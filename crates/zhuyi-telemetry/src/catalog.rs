//! The fixed metric catalogs: every counter, gauge, phase, wire-frame
//! kind, and certificate-decline reason the registry can record.
//!
//! Slots are fixed at compile time — the registry is a set of plain
//! arrays indexed by these enums, so recording is an atomic add with no
//! lookup, no hashing, and no allocation. Every entry carries a stable
//! label used verbatim in the JSON artifact and the Prometheus
//! exposition, and a determinism class: *deterministic* values are pure
//! functions of the executed job set (commutative sums, identical at any
//! worker or shard count), *wall-clock* values depend on timing and
//! scheduling and live in the documented `wall_clock` section of the
//! export.

/// One phase of a simulation tick, profiled in the `av-sim` hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Camera frame sampling and track maintenance
    /// (`PerceptionSystem::tick_columns` / the batched idle tick).
    Perception,
    /// Dead-reckoning the perceived world forward (`coast_into`).
    Prediction,
    /// Ego planning and integration (`plan_with_hints` + `integrate`).
    Policy,
    /// The ground-truth collision check (prefilter + exact SAT test).
    Collision,
    /// Scripted actor stepping and shared-pose projection.
    Actors,
    /// Safe-suffix certificate attempts (batched verdict runs only).
    Certificate,
}

impl Phase {
    /// Number of phases (the registry's array length).
    pub const COUNT: usize = 6;

    /// Every phase, in export order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Perception,
        Phase::Prediction,
        Phase::Policy,
        Phase::Collision,
        Phase::Actors,
        Phase::Certificate,
    ];

    /// The registry slot of this phase.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable label used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Perception => "perception",
            Phase::Prediction => "prediction",
            Phase::Policy => "policy",
            Phase::Collision => "collision",
            Phase::Actors => "actors",
            Phase::Certificate => "certificate",
        }
    }
}

/// A monotonically increasing count with a fixed registry slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Engine ticks advanced through `Simulation::step_with`.
    EngineTicks,
    /// Sweep jobs executed to completion.
    JobsExecuted,
    /// Batched lanes that ended in a collision.
    BatchCollidedLanes,
    /// Batched lanes retired early by a safe-suffix certificate.
    BatchCertifiedLanes,
    /// Per-lane ticks actually simulated in batched runs.
    BatchLaneTicks,
    /// Per-lane ticks skipped by certificate retirement.
    BatchTicksRetired,
    /// Batched ticks that took the verdict-only idle fast path.
    BatchIdleLaneTicks,
    /// Idle ticks whose Frenet prefilter fell back to the exact check.
    BatchPrefilterFallbacks,
    /// Safe-suffix certificate attempts.
    BatchCertAttempts,
    /// Certificate attempts that declined.
    BatchCertDeclines,
    /// Jobs stolen from another shard's queue (pool or coordinator).
    Steals,
    /// Heartbeat frames sent by this worker.
    HeartbeatsSent,
    /// Heartbeat echoes (coordinator → worker round-trip completions).
    HeartbeatEchoes,
    /// Wire frames rejected by the payload checksum.
    ChecksumFailures,
    /// Wire read errors other than checksum failures (EOF, malformed).
    WireReadErrors,
    /// Faults injected by the chaos transport (drops, corruption, delays).
    ChaosInjections,
    /// Contained job panics counted as strikes.
    PanicStrikes,
    /// Per-job deadline expirations counted as strikes.
    DeadlineStrikes,
    /// Jobs quarantined after exhausting their failure budget.
    QuarantinedJobs,
    /// Flight-recorder dumps written.
    FlightDumps,
    /// Worker sessions accepted by the coordinator.
    WorkersConnected,
    /// Worker sessions lost mid-sweep.
    WorkersLost,
    /// Plans accepted into the daemon's admission queue.
    PlanSubmits,
    /// Retried submits answered from the fingerprint index (no new entry).
    SubmitsDeduped,
    /// Submits shed with `Busy` because the admission queue was full.
    SubmitsShed,
    /// Queued plans executed to completion by the daemon.
    PlansCompleted,
    /// Journal replays performed at daemon startup.
    JournalReplays,
    /// Client leases that expired without renewal.
    LeaseExpiries,
    /// Drain requests accepted by the daemon.
    DrainRequests,
    /// Poisoned-mutex recoveries (a panicking holder was survived).
    PoisonRecoveries,
}

impl Counter {
    /// Number of counters (the registry's array length).
    pub const COUNT: usize = 30;

    /// Every counter, in export order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::EngineTicks,
        Counter::JobsExecuted,
        Counter::BatchCollidedLanes,
        Counter::BatchCertifiedLanes,
        Counter::BatchLaneTicks,
        Counter::BatchTicksRetired,
        Counter::BatchIdleLaneTicks,
        Counter::BatchPrefilterFallbacks,
        Counter::BatchCertAttempts,
        Counter::BatchCertDeclines,
        Counter::Steals,
        Counter::HeartbeatsSent,
        Counter::HeartbeatEchoes,
        Counter::ChecksumFailures,
        Counter::WireReadErrors,
        Counter::ChaosInjections,
        Counter::PanicStrikes,
        Counter::DeadlineStrikes,
        Counter::QuarantinedJobs,
        Counter::FlightDumps,
        Counter::WorkersConnected,
        Counter::WorkersLost,
        Counter::PlanSubmits,
        Counter::SubmitsDeduped,
        Counter::SubmitsShed,
        Counter::PlansCompleted,
        Counter::JournalReplays,
        Counter::LeaseExpiries,
        Counter::DrainRequests,
        Counter::PoisonRecoveries,
    ];

    /// The registry slot of this counter.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the value is a pure function of the executed job set
    /// (shard-count-independent, run-to-run identical) or wall-clock /
    /// scheduling dependent.
    pub fn deterministic(self) -> bool {
        matches!(
            self,
            Counter::EngineTicks
                | Counter::JobsExecuted
                | Counter::BatchCollidedLanes
                | Counter::BatchCertifiedLanes
                | Counter::BatchLaneTicks
                | Counter::BatchTicksRetired
                | Counter::BatchIdleLaneTicks
                | Counter::BatchPrefilterFallbacks
                | Counter::BatchCertAttempts
                | Counter::BatchCertDeclines
        )
    }

    /// Stable label used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EngineTicks => "engine_ticks",
            Counter::JobsExecuted => "jobs_executed",
            Counter::BatchCollidedLanes => "batch_collided_lanes",
            Counter::BatchCertifiedLanes => "batch_certified_lanes",
            Counter::BatchLaneTicks => "batch_lane_ticks",
            Counter::BatchTicksRetired => "batch_ticks_retired",
            Counter::BatchIdleLaneTicks => "batch_idle_lane_ticks",
            Counter::BatchPrefilterFallbacks => "batch_prefilter_fallbacks",
            Counter::BatchCertAttempts => "batch_cert_attempts",
            Counter::BatchCertDeclines => "batch_cert_declines",
            Counter::Steals => "steals",
            Counter::HeartbeatsSent => "heartbeats_sent",
            Counter::HeartbeatEchoes => "heartbeat_echoes",
            Counter::ChecksumFailures => "checksum_failures",
            Counter::WireReadErrors => "wire_read_errors",
            Counter::ChaosInjections => "chaos_injections",
            Counter::PanicStrikes => "panic_strikes",
            Counter::DeadlineStrikes => "deadline_strikes",
            Counter::QuarantinedJobs => "quarantined_jobs",
            Counter::FlightDumps => "flight_dumps",
            Counter::WorkersConnected => "workers_connected",
            Counter::WorkersLost => "workers_lost",
            Counter::PlanSubmits => "plan_submits",
            Counter::SubmitsDeduped => "submits_deduped",
            Counter::SubmitsShed => "submits_shed",
            Counter::PlansCompleted => "plans_completed",
            Counter::JournalReplays => "journal_replays",
            Counter::LeaseExpiries => "lease_expiries",
            Counter::DrainRequests => "drain_requests",
            Counter::PoisonRecoveries => "poison_recoveries",
        }
    }
}

/// A last-value-wins instantaneous reading (merged by maximum, so a
/// folded snapshot reports the peak across shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Workers currently connected to the coordinator.
    LiveWorkers,
    /// Batches waiting in the coordinator's pending queue.
    PendingBatches,
    /// Batches currently assigned and in flight.
    InflightBatches,
    /// Plans waiting in the daemon's admission queue.
    QueuedPlans,
}

impl Gauge {
    /// Number of gauges (the registry's array length).
    pub const COUNT: usize = 4;

    /// Every gauge, in export order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::LiveWorkers,
        Gauge::PendingBatches,
        Gauge::InflightBatches,
        Gauge::QueuedPlans,
    ];

    /// The registry slot of this gauge.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable label used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::LiveWorkers => "live_workers",
            Gauge::PendingBatches => "pending_batches",
            Gauge::InflightBatches => "inflight_batches",
            Gauge::QueuedPlans => "queued_plans",
        }
    }
}

/// One kind of distributed wire frame, for the frames/bytes-by-kind
/// accounting. Mirrors the `zhuyi-distd` protocol's frame tags; the
/// telemetry crate owns the catalog so both ends of the wire and the
/// export schema agree on labels without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKind {
    /// Worker → coordinator session open.
    Hello,
    /// Coordinator → worker session accept.
    Welcome,
    /// Coordinator → worker session refusal.
    Reject,
    /// Coordinator → worker job shard.
    Assign,
    /// Coordinator → worker steal notification.
    Revoke,
    /// Worker → coordinator finished job.
    Result,
    /// Worker → coordinator end-of-shard marker.
    BatchDone,
    /// Liveness signal (both directions under protocol v6).
    Heartbeat,
    /// Coordinator → worker sweep-complete signal.
    Shutdown,
    /// Worker → coordinator contained job failure.
    JobFailed,
    /// Worker → coordinator cumulative telemetry snapshot.
    Metrics,
    /// Client → daemon session open (protocol v7).
    ClientHello,
    /// Daemon → client session accept.
    ClientWelcome,
    /// Client → daemon plan submission.
    Submit,
    /// Daemon → client submission accepted (or deduplicated).
    Accepted,
    /// Daemon → client admission-queue-full load shed.
    Busy,
    /// Client → daemon plan status poll (renews the lease).
    Status,
    /// Daemon → client plan status answer.
    StatusReport,
    /// Client → daemon queued-plan cancellation.
    Cancel,
    /// Client → daemon completed-result retrieval.
    FetchResults,
    /// Daemon → client streamed plan results.
    Results,
    /// Client → daemon graceful-drain request.
    Drain,
    /// Daemon → client drain acknowledgement.
    DrainAck,
}

impl WireKind {
    /// Number of wire-frame kinds (the registry's array length).
    pub const COUNT: usize = 23;

    /// Every kind, in export order.
    pub const ALL: [WireKind; WireKind::COUNT] = [
        WireKind::Hello,
        WireKind::Welcome,
        WireKind::Reject,
        WireKind::Assign,
        WireKind::Revoke,
        WireKind::Result,
        WireKind::BatchDone,
        WireKind::Heartbeat,
        WireKind::Shutdown,
        WireKind::JobFailed,
        WireKind::Metrics,
        WireKind::ClientHello,
        WireKind::ClientWelcome,
        WireKind::Submit,
        WireKind::Accepted,
        WireKind::Busy,
        WireKind::Status,
        WireKind::StatusReport,
        WireKind::Cancel,
        WireKind::FetchResults,
        WireKind::Results,
        WireKind::Drain,
        WireKind::DrainAck,
    ];

    /// The registry slot of this kind.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable label used in exports.
    pub fn name(self) -> &'static str {
        match self {
            WireKind::Hello => "hello",
            WireKind::Welcome => "welcome",
            WireKind::Reject => "reject",
            WireKind::Assign => "assign",
            WireKind::Revoke => "revoke",
            WireKind::Result => "result",
            WireKind::BatchDone => "batch_done",
            WireKind::Heartbeat => "heartbeat",
            WireKind::Shutdown => "shutdown",
            WireKind::JobFailed => "job_failed",
            WireKind::Metrics => "metrics",
            WireKind::ClientHello => "client_hello",
            WireKind::ClientWelcome => "client_welcome",
            WireKind::Submit => "submit",
            WireKind::Accepted => "accepted",
            WireKind::Busy => "busy",
            WireKind::Status => "status",
            WireKind::StatusReport => "status_report",
            WireKind::Cancel => "cancel",
            WireKind::FetchResults => "fetch_results",
            WireKind::Results => "results",
            WireKind::Drain => "drain",
            WireKind::DrainAck => "drain_ack",
        }
    }
}

/// Why a safe-suffix retirement certificate declined — one variant per
/// decline site in `av-sim`'s certificate module, so the former
/// `ZHUYI_CERT_DEBUG` stderr stream becomes a structured per-reason
/// counter. Labels reproduce the original decline messages verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the label carries each variant's full meaning
pub enum CertReason {
    CurvatureBeyondBound,
    ActorUnclassifiable,
    MultipleTrailers,
    TrailerPendingManeuvers,
    BeyondLeadUnclear,
    FrameLoss,
    StaleInCorridorTrack,
    LeavesSampledArc,
    TrailerOutsideBand,
    LeadUntracked,
    LeadUnconfirmed,
    LeadLaterallyStale,
    LeadNotVisible,
    ParkedEgoMoving,
    ParkedStaleCreep,
    ParkedLeadScriptPending,
    ParkedEgoAccelerating,
    ParkedGapFloor,
    ParkedTrackNotAtRest,
    ParkedCreepBudget,
    ParkedTrailerPresent,
    FollowRelativeSpeed,
    FollowEgoAccel,
    FollowGapTooSmall,
    FollowBelowIdmGap,
    FollowDriftEatsGap,
    FollowTrackUnsettled,
    FollowGapInconsistent,
    FollowOutOfRange,
    MatchRelativeSpeed,
    MatchEgoAccel,
    MatchGapTooSmall,
    MatchDriftEatsGap,
    MatchTrackStale,
    MatchGapInconsistent,
    MatchOutOfRange,
}

impl CertReason {
    /// Number of decline reasons (the registry's array length).
    pub const COUNT: usize = 36;

    /// Every reason, in export order.
    pub const ALL: [CertReason; CertReason::COUNT] = [
        CertReason::CurvatureBeyondBound,
        CertReason::ActorUnclassifiable,
        CertReason::MultipleTrailers,
        CertReason::TrailerPendingManeuvers,
        CertReason::BeyondLeadUnclear,
        CertReason::FrameLoss,
        CertReason::StaleInCorridorTrack,
        CertReason::LeavesSampledArc,
        CertReason::TrailerOutsideBand,
        CertReason::LeadUntracked,
        CertReason::LeadUnconfirmed,
        CertReason::LeadLaterallyStale,
        CertReason::LeadNotVisible,
        CertReason::ParkedEgoMoving,
        CertReason::ParkedStaleCreep,
        CertReason::ParkedLeadScriptPending,
        CertReason::ParkedEgoAccelerating,
        CertReason::ParkedGapFloor,
        CertReason::ParkedTrackNotAtRest,
        CertReason::ParkedCreepBudget,
        CertReason::ParkedTrailerPresent,
        CertReason::FollowRelativeSpeed,
        CertReason::FollowEgoAccel,
        CertReason::FollowGapTooSmall,
        CertReason::FollowBelowIdmGap,
        CertReason::FollowDriftEatsGap,
        CertReason::FollowTrackUnsettled,
        CertReason::FollowGapInconsistent,
        CertReason::FollowOutOfRange,
        CertReason::MatchRelativeSpeed,
        CertReason::MatchEgoAccel,
        CertReason::MatchGapTooSmall,
        CertReason::MatchDriftEatsGap,
        CertReason::MatchTrackStale,
        CertReason::MatchGapInconsistent,
        CertReason::MatchOutOfRange,
    ];

    /// The registry slot of this reason.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable label used in exports and (without per-instance detail) in
    /// the `ZHUYI_CERT_DEBUG` event stream — the original decline
    /// message text.
    pub fn label(self) -> &'static str {
        match self {
            CertReason::CurvatureBeyondBound => "curvature beyond certificate bound",
            CertReason::ActorUnclassifiable => "actor unclassifiable",
            CertReason::MultipleTrailers => "multiple trailers",
            CertReason::TrailerPendingManeuvers => "trailer with pending maneuvers",
            CertReason::BeyondLeadUnclear => "actor beyond the lead too close, closing or scripted",
            CertReason::FrameLoss => "injected frame loss",
            CertReason::StaleInCorridorTrack => "stale in-corridor track",
            CertReason::LeavesSampledArc => "run leaves the sampled arc",
            CertReason::TrailerOutsideBand => "trailer outside band",
            CertReason::LeadUntracked => "lead untracked",
            CertReason::LeadUnconfirmed => "lead unconfirmed",
            CertReason::LeadLaterallyStale => "lead track laterally stale",
            CertReason::LeadNotVisible => "lead not currently visible",
            CertReason::ParkedEgoMoving => "parked: ego still moving",
            CertReason::ParkedStaleCreep => "parked: stale creep unbounded",
            CertReason::ParkedLeadScriptPending => "parked: lead script not fully fired",
            CertReason::ParkedEgoAccelerating => "parked: ego accelerating",
            CertReason::ParkedGapFloor => "parked: too close to bound creep",
            CertReason::ParkedTrackNotAtRest => "parked: track not at rest",
            CertReason::ParkedCreepBudget => "parked: creep budget too large",
            CertReason::ParkedTrailerPresent => "parked: trailer present",
            CertReason::FollowRelativeSpeed => "follow: relative speed out of band",
            CertReason::FollowEgoAccel => "follow: ego accel out of band",
            CertReason::FollowGapTooSmall => "follow: gap too small",
            CertReason::FollowBelowIdmGap => "follow: below IDM equilibrium gap",
            CertReason::FollowDriftEatsGap => "follow: drift bound eats the gap",
            CertReason::FollowTrackUnsettled => "follow: track speed not settled",
            CertReason::FollowGapInconsistent => "follow: perceived gap inconsistent",
            CertReason::FollowOutOfRange => "follow: lead may out-range cameras",
            CertReason::MatchRelativeSpeed => "match: relative speed out of band",
            CertReason::MatchEgoAccel => "match: ego accel out of band",
            CertReason::MatchGapTooSmall => "match: gap too small",
            CertReason::MatchDriftEatsGap => "match: drift bound eats the gap",
            CertReason::MatchTrackStale => "match: track speed too stale",
            CertReason::MatchGapInconsistent => "match: perceived gap inconsistent",
            CertReason::MatchOutOfRange => "match: lead may out-range cameras",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_indices_are_dense_and_ordered() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, k) in WireKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, r) in CertReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate catalog label");

        let mut reasons: Vec<&str> = CertReason::ALL.iter().map(|r| r.label()).collect();
        let before = reasons.len();
        reasons.sort_unstable();
        reasons.dedup();
        assert_eq!(reasons.len(), before, "duplicate decline reason label");
    }
}
