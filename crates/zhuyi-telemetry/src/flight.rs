//! The flight recorder: a bounded ring of recent structured events,
//! dumped as JSON for post-mortem debugging when something goes wrong
//! (job panic, deadline strike, quarantine).
//!
//! The recorder is deliberately coordinator-side in the distributed
//! fleet: a wedged or killed worker cannot dump its own history, but the
//! coordinator observed every assign/result/failure that led up to the
//! event. Recording is cheap (one mutex push per *scheduling* event,
//! never per tick) and the ring is bounded, so a long sweep holds only
//! the recent past.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// One recorded scheduling event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Milliseconds since the recorder was created.
    pub at_ms: u64,
    /// Stable event kind (`"assign"`, `"result"`, `"job_failed"`,
    /// `"strike"`, `"deadline"`, `"worker_lost"`, `"quarantine"`, …).
    pub kind: &'static str,
    /// The worker the event concerns (0 when not worker-specific).
    pub worker: u64,
    /// The job the event concerns, if any.
    pub job: Option<u64>,
    /// Free-text detail (panic message, strike count, addresses).
    pub detail: String,
}

/// A bounded ring buffer of [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    events: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// Default ring capacity: enough to hold the recent scheduling
    /// history of a large sweep without unbounded growth.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A recorder holding at most `capacity` recent events.
    pub fn new(capacity: usize) -> Self {
        Self {
            start: Instant::now(),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
        }
    }

    /// Records one event, evicting the oldest once full.
    pub fn record(
        &self,
        kind: &'static str,
        worker: u64,
        job: Option<u64>,
        detail: impl Into<String>,
    ) {
        let event = FlightEvent {
            at_ms: self.start.elapsed().as_millis() as u64,
            kind,
            worker,
            job,
            detail: detail.into(),
        };
        let mut events = self.events.lock().expect("flight ring poisoned");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.lock().expect("flight ring poisoned").len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the ring (oldest first) as a JSON dump document for the
    /// given trigger. `trigger` and `job` identify why the dump was
    /// taken; the events are the recent history leading up to it.
    pub fn dump_json(&self, trigger: &str, job: Option<u64>) -> String {
        let events = self.events.lock().expect("flight ring poisoned");
        let mut out = String::with_capacity(256 + events.len() * 96);
        let _ = write!(
            out,
            "{{\n  \"schema\": \"zhuyi.flight.v1\",\n  \"trigger\": \"{}\",\n  \"job\": {},\n  \"events\": [",
            escape(trigger),
            match job {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            }
        );
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"at_ms\":{},\"kind\":\"{}\",\"worker\":{},\"job\":{},\"detail\":\"{}\"}}",
                e.at_ms,
                escape(e.kind),
                e.worker,
                match e.job {
                    Some(id) => id.to_string(),
                    None => "null".to_string(),
                },
                escape(&e.detail)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping for event details (quotes, backslashes,
/// control characters — panic messages can contain any of them).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let recorder = FlightRecorder::new(3);
        for i in 0..5u64 {
            recorder.record("assign", 1, Some(i), format!("batch {i}"));
        }
        assert_eq!(recorder.len(), 3);
        let dump = recorder.dump_json("test", None);
        assert!(!dump.contains("batch 0"));
        assert!(!dump.contains("batch 1"));
        assert!(dump.contains("batch 2"));
        assert!(dump.contains("batch 4"));
    }

    #[test]
    fn dump_is_valid_shaped_json_with_escaping() {
        let recorder = FlightRecorder::new(8);
        recorder.record(
            "job_failed",
            2,
            Some(5),
            "panicked at 'index out of bounds: the len is 3'\nnote: \"quoted\"",
        );
        let dump = recorder.dump_json("quarantine", Some(5));
        assert!(dump.contains("\"schema\": \"zhuyi.flight.v1\""));
        assert!(dump.contains("\"trigger\": \"quarantine\""));
        assert!(dump.contains("\"job\": 5"));
        assert!(dump.contains("\\n"));
        assert!(dump.contains("\\\"quoted\\\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            dump.matches('{').count(),
            dump.matches('}').count(),
            "unbalanced braces in {dump}"
        );
    }
}
