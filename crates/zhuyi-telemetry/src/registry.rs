//! The live metrics registry: fixed-slot atomic arrays plus log-scale
//! histograms, lock-free on every recording path that a simulation tick
//! can hit.
//!
//! A registry is one *shard*: each thread that records installs its own
//! (or a shared one) and the owner merges shard snapshots in id order,
//! which is what keeps folded artifacts deterministic — u64 sums are
//! commutative, so any merge order of the same per-job increments yields
//! the same totals. The only lock in the struct guards the per-job
//! timing list, which is touched once per *job* (milliseconds to
//! seconds of work), never per tick.

use crate::catalog::{CertReason, Counter, Gauge, Phase, WireKind};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of log2 buckets in every histogram: bucket `i` holds values
/// whose bit length is `i` (so bucket 0 is exactly zero, bucket 1 is
/// `1`, bucket 2 is `2..=3`, …), with everything of bit length ≥ 31
/// clamped into the last bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A lock-free log2-bucketed histogram of `u64` samples.
///
/// Recording is three relaxed atomic adds (count, sum, bucket) — no
/// allocation, no lock — which is what lets duration histograms sit on
/// the tick path without breaking the zero-allocation claim.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let bucket = (64 - u64::leading_zeros(value)).min(HISTOGRAM_BUCKETS as u32 - 1) as usize;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current state into a plain snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn absorb(&self, snap: &HistogramSnapshot) {
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        for (bucket, &v) in self.buckets.iter().zip(&snap.buckets) {
            bucket.fetch_add(v, Ordering::Relaxed);
        }
    }
}

fn atomic_array<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

/// One telemetry shard: every slot of every catalog, live.
///
/// See the crate docs for the install/record/merge model. All recording
/// methods are `&self`, relaxed-atomic, and allocation-free except
/// [`Registry::record_job`] (a per-job `Vec` push, explicitly off the
/// tick path).
#[derive(Debug)]
pub struct Registry {
    phase_ticks: [AtomicU64; Phase::COUNT],
    phase_ns: [Histogram; Phase::COUNT],
    cert_declines: [AtomicU64; CertReason::COUNT],
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    wire_sent_frames: [AtomicU64; WireKind::COUNT],
    wire_sent_bytes: [AtomicU64; WireKind::COUNT],
    wire_recv_frames: [AtomicU64; WireKind::COUNT],
    wire_recv_bytes: [AtomicU64; WireKind::COUNT],
    job_wall_us: Histogram,
    queue_depth: Histogram,
    heartbeat_rtt_us: Histogram,
    jobs: Mutex<Vec<(u64, u64)>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            phase_ticks: atomic_array(),
            phase_ns: Default::default(),
            cert_declines: atomic_array(),
            counters: atomic_array(),
            gauges: atomic_array(),
            wire_sent_frames: atomic_array(),
            wire_sent_bytes: atomic_array(),
            wire_recv_frames: atomic_array(),
            wire_recv_bytes: atomic_array(),
            job_wall_us: Histogram::default(),
            queue_depth: Histogram::default(),
            heartbeat_rtt_us: Histogram::default(),
            jobs: Mutex::new(Vec::new()),
        }
    }

    /// Adds one to `counter`.
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds `n` to `counter`.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Sets `gauge` to its current instantaneous value.
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge.index()].store(value, Ordering::Relaxed);
    }

    /// Records one completed tick phase: a tick count plus its duration.
    pub fn phase_lap(&self, phase: Phase, nanos: u64) {
        self.phase_ticks[phase.index()].fetch_add(1, Ordering::Relaxed);
        self.phase_ns[phase.index()].record(nanos);
    }

    /// Counts one certificate decline for `reason`.
    pub fn cert_decline(&self, reason: CertReason) {
        self.cert_declines[reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one outbound wire frame of `kind` and its payload bytes.
    pub fn wire_sent(&self, kind: WireKind, bytes: u64) {
        self.wire_sent_frames[kind.index()].fetch_add(1, Ordering::Relaxed);
        self.wire_sent_bytes[kind.index()].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accounts one inbound wire frame of `kind` and its payload bytes.
    pub fn wire_recv(&self, kind: WireKind, bytes: u64) {
        self.wire_recv_frames[kind.index()].fetch_add(1, Ordering::Relaxed);
        self.wire_recv_bytes[kind.index()].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one finished job's wall time (id, microseconds). The one
    /// allocating record path — called once per job, never per tick.
    pub fn record_job(&self, id: u64, micros: u64) {
        self.job_wall_us.record(micros);
        self.inc(Counter::JobsExecuted);
        self.jobs
            .lock()
            .expect("job list poisoned")
            .push((id, micros));
    }

    /// Samples the local queue depth after a dequeue.
    pub fn record_queue_depth(&self, depth: u64) {
        self.queue_depth.record(depth);
    }

    /// Records one heartbeat round-trip latency in microseconds.
    pub fn record_rtt_us(&self, micros: u64) {
        self.heartbeat_rtt_us.record(micros);
    }

    /// Copies the whole registry into a plain [`Snapshot`]. Per-job
    /// records come out sorted by (id, wall) so equal-content registries
    /// snapshot to equal bytes regardless of completion order.
    pub fn snapshot(&self) -> Snapshot {
        let load = |slots: &[AtomicU64]| -> Vec<u64> {
            slots.iter().map(|s| s.load(Ordering::Relaxed)).collect()
        };
        let mut jobs = self.jobs.lock().expect("job list poisoned").clone();
        jobs.sort_unstable();
        Snapshot {
            phase_ticks: load(&self.phase_ticks).try_into().expect("phase arity"),
            phase_ns: std::array::from_fn(|i| self.phase_ns[i].snapshot()),
            cert_declines: load(&self.cert_declines).try_into().expect("reason arity"),
            counters: load(&self.counters).try_into().expect("counter arity"),
            gauges: load(&self.gauges).try_into().expect("gauge arity"),
            wire_sent_frames: load(&self.wire_sent_frames).try_into().expect("wire arity"),
            wire_sent_bytes: load(&self.wire_sent_bytes).try_into().expect("wire arity"),
            wire_recv_frames: load(&self.wire_recv_frames).try_into().expect("wire arity"),
            wire_recv_bytes: load(&self.wire_recv_bytes).try_into().expect("wire arity"),
            job_wall_us: self.job_wall_us.snapshot(),
            queue_depth: self.queue_depth.snapshot(),
            heartbeat_rtt_us: self.heartbeat_rtt_us.snapshot(),
            jobs,
            shards_folded: 1,
        }
    }

    /// Folds a shard snapshot into this live registry: counters,
    /// histograms, and per-job records add; gauges keep the maximum.
    /// Merging shards in id order over commutative sums is what makes
    /// the folded artifact independent of scheduling.
    pub fn absorb(&self, snap: &Snapshot) {
        let fold = |slots: &[AtomicU64], values: &[u64]| {
            for (slot, &v) in slots.iter().zip(values) {
                slot.fetch_add(v, Ordering::Relaxed);
            }
        };
        fold(&self.phase_ticks, &snap.phase_ticks);
        fold(&self.cert_declines, &snap.cert_declines);
        fold(&self.counters, &snap.counters);
        fold(&self.wire_sent_frames, &snap.wire_sent_frames);
        fold(&self.wire_sent_bytes, &snap.wire_sent_bytes);
        fold(&self.wire_recv_frames, &snap.wire_recv_frames);
        fold(&self.wire_recv_bytes, &snap.wire_recv_bytes);
        for (gauge, &v) in self.gauges.iter().zip(&snap.gauges) {
            gauge.fetch_max(v, Ordering::Relaxed);
        }
        for (hist, s) in self.phase_ns.iter().zip(&snap.phase_ns) {
            hist.absorb(s);
        }
        self.job_wall_us.absorb(&snap.job_wall_us);
        self.queue_depth.absorb(&snap.queue_depth);
        self.heartbeat_rtt_us.absorb(&snap.heartbeat_rtt_us);
        self.jobs
            .lock()
            .expect("job list poisoned")
            .extend_from_slice(&snap.jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        h.record(u64::MAX); // clamped into the last bucket
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1030u64.wrapping_add(u64::MAX)); // sum wraps by design
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_gauges() {
        let a = Registry::new();
        let b = Registry::new();
        a.inc(Counter::Steals);
        a.set_gauge(Gauge::LiveWorkers, 2);
        b.add(Counter::Steals, 4);
        b.set_gauge(Gauge::LiveWorkers, 7);
        b.cert_decline(CertReason::MultipleTrailers);
        b.phase_lap(Phase::Policy, 1200);
        a.absorb(&b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.counters[Counter::Steals.index()], 5);
        assert_eq!(s.gauges[Gauge::LiveWorkers.index()], 7);
        assert_eq!(s.cert_declines[CertReason::MultipleTrailers.index()], 1);
        assert_eq!(s.phase_ticks[Phase::Policy.index()], 1);
        assert_eq!(s.phase_ns[Phase::Policy.index()].sum, 1200);
    }

    #[test]
    fn job_records_snapshot_sorted() {
        let r = Registry::new();
        r.record_job(9, 100);
        r.record_job(3, 50);
        r.record_job(9, 90);
        let s = r.snapshot();
        assert_eq!(s.jobs, vec![(3, 50), (9, 90), (9, 100)]);
        assert_eq!(s.counters[Counter::JobsExecuted.index()], 3);
        assert_eq!(s.job_wall_us.count, 3);
    }
}
