//! **zhuyi-telemetry** — a zero-overhead-when-off metrics, tracing, and
//! flight-recorder layer for the Zhuyi (DAC 2022) reproduction.
//!
//! The whole stack — `av-sim` hot loops, the fleet worker pool, the
//! distributed coordinator/worker pair — records into one fixed-slot
//! [`Registry`] of counters, gauges, and log-scale histograms. The
//! design contract, in priority order:
//!
//! 1. **Zero overhead when off.** No registry installed means every
//!    hook is a thread-local load and a branch; no `Instant::now`, no
//!    atomics, no allocation. The counting-allocator test in `av-sim`
//!    pins "no allocation per warm tick" with telemetry disabled *and*
//!    enabled.
//! 2. **Out of band.** Telemetry never feeds back into scheduling or
//!    results: sweep exports (CSV/JSON/traces) are byte-identical with
//!    telemetry off, on, or distributed. The cross-path equivalence
//!    harness pins this.
//! 3. **Deterministic aggregates.** Each recording thread owns a shard
//!    registry; shards are merged in id order, and every value in the
//!    artifact's `"deterministic"` section is a commutative u64 sum over
//!    the executed job set — identical at any worker count. Wall-clock
//!    data (durations, queue depths, RTTs) lives in a documented
//!    `"wall_clock"` section.
//!
//! # Installing
//!
//! Telemetry is scoped, not global: [`install`] binds a registry to the
//! *current thread* and returns a [`Guard`] that restores the previous
//! binding on drop. Thread pools and the distributed worker propagate
//! the binding themselves (each worker thread installs its own shard
//! and the owner folds the shards afterwards). Nothing is recorded on
//! threads that never install — so tests and embedded uses cannot
//! cross-contaminate.
//!
//! ```
//! use std::sync::Arc;
//! use zhuyi_telemetry as telemetry;
//!
//! let registry = Arc::new(telemetry::Registry::new());
//! {
//!     let _guard = telemetry::install(&registry);
//!     telemetry::with(|t| t.inc(telemetry::Counter::JobsExecuted));
//! }
//! // Out of scope: hooks are no-ops again.
//! telemetry::with(|t| t.inc(telemetry::Counter::JobsExecuted));
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters[telemetry::Counter::JobsExecuted.index()], 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod catalog;
mod flight;
mod registry;
mod snapshot;

pub use catalog::{CertReason, Counter, Gauge, Phase, WireKind};
pub use flight::{FlightEvent, FlightRecorder};
pub use registry::{Histogram, Registry, HISTOGRAM_BUCKETS};
pub use snapshot::{HistogramSnapshot, Snapshot, SCHEMA};

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static CURRENT: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// Restores the previous thread-local registry binding on drop (see
/// [`install`]).
#[derive(Debug)]
pub struct Guard {
    previous: Option<Arc<Registry>>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        CURRENT.with(|current| *current.borrow_mut() = self.previous.take());
    }
}

/// Binds `registry` as the current thread's telemetry sink until the
/// returned [`Guard`] drops. Nestable: the guard restores whatever was
/// bound before.
#[must_use = "telemetry is recorded only while the guard is live"]
pub fn install(registry: &Arc<Registry>) -> Guard {
    CURRENT.with(|current| Guard {
        previous: current.borrow_mut().replace(Arc::clone(registry)),
    })
}

/// The current thread's registry, if one is installed. Cloning the
/// `Arc` is a refcount bump — no allocation — so hot loops may call
/// this once per tick and hold the handle across the tick.
pub fn current() -> Option<Arc<Registry>> {
    CURRENT.with(|current| current.borrow().clone())
}

/// Whether the current thread has a registry installed.
pub fn enabled() -> bool {
    CURRENT.with(|current| current.borrow().is_some())
}

/// Runs `f` against the installed registry, or does nothing — the
/// branch-on-disabled fast path every instrumentation hook compiles to.
#[inline]
pub fn with<F: FnOnce(&Registry)>(f: F) {
    CURRENT.with(|current| {
        if let Some(registry) = &*current.borrow() {
            f(registry);
        }
    });
}

/// Counts one certificate decline (no-op when disabled). Free-standing
/// so `av-sim`'s `decline!` macro stays a single expression.
#[inline]
pub fn cert_decline(reason: CertReason) {
    with(|t| t.cert_decline(reason));
}

/// Per-tick phase profiler: resolves the registry once at tick start,
/// then each [`PhaseTimer::lap`] records the segment since the previous
/// lap (or [`PhaseTimer::skip`]) as one tick of `phase` plus its
/// duration. With no registry installed every method is a branch on
/// `None` — no clock reads, no atomics.
#[derive(Debug)]
pub struct PhaseTimer {
    inner: Option<(Arc<Registry>, Instant)>,
}

impl PhaseTimer {
    /// Starts timing at the current instant (if telemetry is on).
    #[inline]
    pub fn start() -> Self {
        Self {
            inner: current().map(|registry| (registry, Instant::now())),
        }
    }

    /// Whether a registry is attached (telemetry enabled at start).
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// Re-stamps the segment start without recording — used to skip
    /// bookkeeping stretches that belong to no phase.
    #[inline]
    pub fn skip(&mut self) {
        if let Some((_, last)) = &mut self.inner {
            *last = Instant::now();
        }
    }

    /// Ends the current segment, recording it as one `phase` tick.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        if let Some((registry, last)) = &mut self.inner {
            let now = Instant::now();
            registry.phase_lap(phase, now.duration_since(*last).as_nanos() as u64);
            *last = now;
        }
    }
}

/// Per-job wall timer: start before executing, finish with the job id
/// (or the ids of a whole seed block, which records the amortized
/// per-job share). No-op when telemetry is off.
#[derive(Debug)]
pub struct JobTimer {
    started: Option<Instant>,
}

impl JobTimer {
    /// Starts the clock (if telemetry is on).
    pub fn start() -> Self {
        Self {
            started: enabled().then(Instant::now),
        }
    }

    /// Records the elapsed wall time against `job`.
    pub fn finish(self, job: u64) {
        if let Some(started) = self.started {
            let micros = started.elapsed().as_micros() as u64;
            with(|t| t.record_job(job, micros));
        }
    }

    /// Records the elapsed wall time split evenly across a seed block's
    /// jobs — block execution is interleaved, so per-job attribution is
    /// the documented amortized share.
    pub fn finish_block(self, jobs: impl IntoIterator<Item = u64>) {
        if let Some(started) = self.started {
            let jobs: Vec<u64> = jobs.into_iter().collect();
            if jobs.is_empty() {
                return;
            }
            let micros = started.elapsed().as_micros() as u64 / jobs.len() as u64;
            with(|t| {
                for job in &jobs {
                    t.record_job(*job, micros);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_scoped_and_nestable() {
        assert!(!enabled());
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        {
            let _outer_guard = install(&outer);
            assert!(enabled());
            with(|t| t.inc(Counter::Steals));
            {
                let _inner_guard = install(&inner);
                with(|t| t.inc(Counter::Steals));
                with(|t| t.inc(Counter::Steals));
            }
            // Back to the outer registry.
            with(|t| t.inc(Counter::Steals));
        }
        assert!(!enabled());
        with(|t| t.inc(Counter::Steals)); // dropped on the floor
        assert_eq!(outer.snapshot().counters[Counter::Steals.index()], 2);
        assert_eq!(inner.snapshot().counters[Counter::Steals.index()], 2);
    }

    #[test]
    fn phase_timer_is_inert_when_disabled() {
        let mut timer = PhaseTimer::start();
        assert!(!timer.active());
        timer.skip();
        timer.lap(Phase::Policy); // must not panic, must record nowhere
    }

    #[test]
    fn phase_timer_records_ticks_and_durations() {
        let registry = Arc::new(Registry::new());
        let _guard = install(&registry);
        let mut timer = PhaseTimer::start();
        assert!(timer.active());
        timer.lap(Phase::Perception);
        timer.lap(Phase::Policy);
        timer.lap(Phase::Perception);
        let snap = registry.snapshot();
        assert_eq!(snap.phase_ticks[Phase::Perception.index()], 2);
        assert_eq!(snap.phase_ticks[Phase::Policy.index()], 1);
        assert_eq!(snap.phase_ns[Phase::Perception.index()].count, 2);
    }

    #[test]
    fn job_timer_splits_blocks_evenly() {
        let registry = Arc::new(Registry::new());
        let _guard = install(&registry);
        JobTimer::start().finish(7);
        JobTimer::start().finish_block([1, 2, 3]);
        let snap = registry.snapshot();
        assert_eq!(snap.jobs.len(), 4);
        assert_eq!(snap.counters[Counter::JobsExecuted.index()], 4);
        let ids: Vec<u64> = snap.jobs.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1, 2, 3, 7]);
    }

    #[test]
    fn cross_thread_shard_merge_in_id_order() {
        let parent = Arc::new(Registry::new());
        let shards: Vec<Arc<Registry>> = (0..4).map(|_| Arc::new(Registry::new())).collect();
        std::thread::scope(|scope| {
            for (i, shard) in shards.iter().enumerate() {
                scope.spawn(move || {
                    let _guard = install(shard);
                    with(|t| t.add(Counter::EngineTicks, (i as u64 + 1) * 10));
                });
            }
        });
        for shard in &shards {
            parent.absorb(&shard.snapshot());
        }
        let snap = parent.snapshot();
        assert_eq!(snap.counters[Counter::EngineTicks.index()], 100);
        assert_eq!(snap.shards_folded, 1); // absorb folds values, not shard counts
    }
}
