//! Plain-data snapshots of a registry: the unit that crosses threads,
//! crosses the distributed wire (piggybacked on the v6 protocol), merges
//! into folded artifacts, and renders as JSON or Prometheus text.
//!
//! # Determinism contract
//!
//! The JSON artifact has two top-level sections. `"deterministic"`
//! holds pure commutative sums over the executed job set — per-phase
//! tick counts, certificate-decline reason counters, batch accounting —
//! which are byte-identical run-to-run and at any worker/shard count
//! for in-process sweeps (distributed sweeps under chaos may
//! double-execute stolen jobs; their telemetry is best-effort).
//! `"wall_clock"` holds everything timing- or scheduling-dependent:
//! duration histograms, per-job wall times, queue depths, heartbeat
//! round-trips, wire accounting. Consumers that diff artifacts must
//! compare only the deterministic section — exactly what the
//! determinism test does via [`Snapshot::deterministic_json`].

use crate::catalog::{CertReason, Counter, Gauge, Phase, WireKind};
use crate::registry::HISTOGRAM_BUCKETS;
use std::fmt::Write as _;

/// Schema identifier written into every JSON artifact.
pub const SCHEMA: &str = "zhuyi.telemetry.v1";

/// Version byte leading every encoded snapshot on the wire.
const WIRE_VERSION: u8 = 1;

/// A plain copy of one [`crate::Registry`] histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Log2 bucket counts; bucket `i` holds samples of bit length `i`
    /// (upper bound `2^i - 1`), the last bucket clamps the tail.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    fn json(&self) -> String {
        let mut buckets = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !buckets.is_empty() {
                buckets.push(',');
            }
            let le: u64 = if i == 0 { 0 } else { (1u64 << i) - 1 };
            let _ = write!(buckets, "[{le},{n}]");
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            self.count, self.sum, buckets
        )
    }
}

/// A plain, mergeable, wire-encodable copy of a whole registry shard.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Ticks recorded per phase (deterministic).
    pub phase_ticks: [u64; Phase::COUNT],
    /// Per-phase duration histograms, nanoseconds (wall-clock).
    pub phase_ns: [HistogramSnapshot; Phase::COUNT],
    /// Certificate declines per reason (deterministic).
    pub cert_declines: [u64; CertReason::COUNT],
    /// Counter values (split by [`Counter::deterministic`]).
    pub counters: [u64; Counter::COUNT],
    /// Gauge values (wall-clock; merged by maximum).
    pub gauges: [u64; Gauge::COUNT],
    /// Outbound wire frames per kind (wall-clock).
    pub wire_sent_frames: [u64; WireKind::COUNT],
    /// Outbound wire payload bytes per kind (wall-clock).
    pub wire_sent_bytes: [u64; WireKind::COUNT],
    /// Inbound wire frames per kind (wall-clock).
    pub wire_recv_frames: [u64; WireKind::COUNT],
    /// Inbound wire payload bytes per kind (wall-clock).
    pub wire_recv_bytes: [u64; WireKind::COUNT],
    /// Per-job wall-time histogram, microseconds (wall-clock).
    pub job_wall_us: HistogramSnapshot,
    /// Queue-depth samples at dequeue time (wall-clock).
    pub queue_depth: HistogramSnapshot,
    /// Heartbeat round-trip latency histogram, microseconds (wall-clock).
    pub heartbeat_rtt_us: HistogramSnapshot,
    /// Per-job `(id, wall microseconds)` records, sorted (wall-clock).
    pub jobs: Vec<(u64, u64)>,
    /// How many registry shards were folded into this snapshot.
    pub shards_folded: u64,
}

impl Default for Snapshot {
    fn default() -> Self {
        Self {
            phase_ticks: [0; Phase::COUNT],
            phase_ns: [HistogramSnapshot::default(); Phase::COUNT],
            cert_declines: [0; CertReason::COUNT],
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            wire_sent_frames: [0; WireKind::COUNT],
            wire_sent_bytes: [0; WireKind::COUNT],
            wire_recv_frames: [0; WireKind::COUNT],
            wire_recv_bytes: [0; WireKind::COUNT],
            job_wall_us: HistogramSnapshot::default(),
            queue_depth: HistogramSnapshot::default(),
            heartbeat_rtt_us: HistogramSnapshot::default(),
            jobs: Vec::new(),
            shards_folded: 0,
        }
    }
}

impl Snapshot {
    /// Folds `other` into `self`: sums everywhere, maximum for gauges,
    /// job records appended and re-sorted.
    pub fn merge(&mut self, other: &Snapshot) {
        let fold = |a: &mut [u64], b: &[u64]| {
            for (x, &y) in a.iter_mut().zip(b) {
                *x += y;
            }
        };
        fold(&mut self.phase_ticks, &other.phase_ticks);
        fold(&mut self.cert_declines, &other.cert_declines);
        fold(&mut self.counters, &other.counters);
        fold(&mut self.wire_sent_frames, &other.wire_sent_frames);
        fold(&mut self.wire_sent_bytes, &other.wire_sent_bytes);
        fold(&mut self.wire_recv_frames, &other.wire_recv_frames);
        fold(&mut self.wire_recv_bytes, &other.wire_recv_bytes);
        for (g, &o) in self.gauges.iter_mut().zip(&other.gauges) {
            *g = (*g).max(o);
        }
        for (h, o) in self.phase_ns.iter_mut().zip(&other.phase_ns) {
            h.merge(o);
        }
        self.job_wall_us.merge(&other.job_wall_us);
        self.queue_depth.merge(&other.queue_depth);
        self.heartbeat_rtt_us.merge(&other.heartbeat_rtt_us);
        self.jobs.extend_from_slice(&other.jobs);
        self.jobs.sort_unstable();
        self.shards_folded += other.shards_folded;
    }

    // --- wire codec -----------------------------------------------------

    /// Encodes the snapshot as deterministic little-endian bytes (the
    /// payload of the v6 protocol's Metrics frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2048);
        out.push(WIRE_VERSION);
        let put_slice = |out: &mut Vec<u8>, values: &[u64]| {
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for &v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        };
        let put_hist = |out: &mut Vec<u8>, h: &HistogramSnapshot| {
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            put_slice(out, &h.buckets);
        };
        put_slice(&mut out, &self.phase_ticks);
        for h in &self.phase_ns {
            put_hist(&mut out, h);
        }
        put_slice(&mut out, &self.cert_declines);
        put_slice(&mut out, &self.counters);
        put_slice(&mut out, &self.gauges);
        put_slice(&mut out, &self.wire_sent_frames);
        put_slice(&mut out, &self.wire_sent_bytes);
        put_slice(&mut out, &self.wire_recv_frames);
        put_slice(&mut out, &self.wire_recv_bytes);
        put_hist(&mut out, &self.job_wall_us);
        put_hist(&mut out, &self.queue_depth);
        put_hist(&mut out, &self.heartbeat_rtt_us);
        out.extend_from_slice(&(self.jobs.len() as u32).to_le_bytes());
        for &(id, us) in &self.jobs {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&us.to_le_bytes());
        }
        out.extend_from_slice(&self.shards_folded.to_le_bytes());
        out
    }

    /// Decodes a snapshot from exactly `bytes` (the inverse of
    /// [`Snapshot::encode`]).
    ///
    /// # Errors
    ///
    /// A description of the first structural mismatch (truncation,
    /// version or arity drift, trailing bytes).
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, String> {
        struct Cur<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl Cur<'_> {
            fn take(&mut self, n: usize) -> Result<&[u8], String> {
                let end = self
                    .pos
                    .checked_add(n)
                    .filter(|&e| e <= self.buf.len())
                    .ok_or("telemetry snapshot truncated")?;
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
            }
            fn array<const N: usize>(&mut self) -> Result<[u64; N], String> {
                let n = u32::from_le_bytes(self.take(4)?.try_into().expect("4")) as usize;
                if n != N {
                    return Err(format!("telemetry catalog arity {n}, expected {N}"));
                }
                let mut out = [0u64; N];
                for v in &mut out {
                    *v = self.u64()?;
                }
                Ok(out)
            }
            fn hist(&mut self) -> Result<HistogramSnapshot, String> {
                Ok(HistogramSnapshot {
                    count: self.u64()?,
                    sum: self.u64()?,
                    buckets: self.array()?,
                })
            }
        }
        let mut c = Cur { buf: bytes, pos: 0 };
        let version = c.take(1)?[0];
        if version != WIRE_VERSION {
            return Err(format!("telemetry snapshot version {version}"));
        }
        let phase_ticks = c.array()?;
        let mut phase_ns = [HistogramSnapshot::default(); Phase::COUNT];
        for h in &mut phase_ns {
            *h = c.hist()?;
        }
        let snapshot = Snapshot {
            phase_ticks,
            phase_ns,
            cert_declines: c.array()?,
            counters: c.array()?,
            gauges: c.array()?,
            wire_sent_frames: c.array()?,
            wire_sent_bytes: c.array()?,
            wire_recv_frames: c.array()?,
            wire_recv_bytes: c.array()?,
            job_wall_us: c.hist()?,
            queue_depth: c.hist()?,
            heartbeat_rtt_us: c.hist()?,
            jobs: {
                let n = u32::from_le_bytes(c.take(4)?.try_into().expect("4")) as usize;
                let mut jobs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    jobs.push((c.u64()?, c.u64()?));
                }
                jobs
            },
            shards_folded: c.u64()?,
        };
        if c.pos != c.buf.len() {
            return Err(format!("{} trailing snapshot bytes", c.buf.len() - c.pos));
        }
        Ok(snapshot)
    }

    // --- JSON -----------------------------------------------------------

    /// Renders only the `"deterministic"` section — the value the
    /// shard-count-independence test compares across runs.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push('{');
        let _ = write!(out, "\"phase_ticks\":{{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", p.name(), self.phase_ticks[p.index()]);
        }
        let _ = write!(out, "}},\"counters\":{{");
        let mut first = true;
        for c in Counter::ALL.iter().filter(|c| c.deterministic()) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", c.name(), self.counters[c.index()]);
        }
        let _ = write!(out, "}},\"cert_declines\":{{");
        for (i, r) in CertReason::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", r.label(), self.cert_declines[r.index()]);
        }
        out.push_str("}}");
        out
    }

    /// Renders the full two-section artifact (see the module docs for
    /// the determinism contract between the sections).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(8192);
        let _ = write!(
            out,
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"deterministic\": {},\n  \"wall_clock\": {{",
            self.deterministic_json()
        );
        let _ = write!(out, "\"counters\":{{");
        let mut first = true;
        for c in Counter::ALL.iter().filter(|c| !c.deterministic()) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", c.name(), self.counters[c.index()]);
        }
        let _ = write!(out, "}},\"gauges\":{{");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", g.name(), self.gauges[g.index()]);
        }
        let _ = write!(out, "}},\"phase_ns\":{{");
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", p.name(), self.phase_ns[p.index()].json());
        }
        let _ = write!(out, "}},\"job_wall_us\":{}", self.job_wall_us.json());
        let _ = write!(out, ",\"queue_depth\":{}", self.queue_depth.json());
        let _ = write!(
            out,
            ",\"heartbeat_rtt_us\":{}",
            self.heartbeat_rtt_us.json()
        );
        let wire = |label: &str, values: &[u64]| {
            let mut s = format!("\"{label}\":{{");
            for (i, k) in WireKind::ALL.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{}", k.name(), values[k.index()]);
            }
            s.push('}');
            s
        };
        let _ = write!(
            out,
            ",\"wire\":{{{},{},{},{}}}",
            wire("sent_frames", &self.wire_sent_frames),
            wire("sent_bytes", &self.wire_sent_bytes),
            wire("recv_frames", &self.wire_recv_frames),
            wire("recv_bytes", &self.wire_recv_bytes),
        );
        let _ = write!(out, ",\"jobs\":[");
        for (i, &(id, us)) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{id},{us}]");
        }
        let _ = write!(out, "],\"shards_folded\":{}", self.shards_folded);
        out.push_str("}\n}\n");
        out
    }

    // --- Prometheus -----------------------------------------------------

    /// Renders Prometheus text exposition (what `--metrics-listen`
    /// serves from the live coordinator).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("# TYPE zhuyi_phase_ticks_total counter\n");
        for p in Phase::ALL {
            let _ = writeln!(
                out,
                "zhuyi_phase_ticks_total{{phase=\"{}\"}} {}",
                p.name(),
                self.phase_ticks[p.index()]
            );
        }
        out.push_str("# TYPE zhuyi_cert_declines_total counter\n");
        for r in CertReason::ALL {
            let n = self.cert_declines[r.index()];
            if n > 0 {
                let _ = writeln!(
                    out,
                    "zhuyi_cert_declines_total{{reason=\"{}\"}} {n}",
                    r.label()
                );
            }
        }
        for c in Counter::ALL {
            let _ = writeln!(
                out,
                "# TYPE zhuyi_{name}_total counter\nzhuyi_{name}_total {}",
                self.counters[c.index()],
                name = c.name()
            );
        }
        for g in Gauge::ALL {
            let _ = writeln!(
                out,
                "# TYPE zhuyi_{name} gauge\nzhuyi_{name} {}",
                self.gauges[g.index()],
                name = g.name()
            );
        }
        let hist = |out: &mut String, name: &str, h: &HistogramSnapshot| {
            let _ = writeln!(out, "# TYPE zhuyi_{name} histogram");
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let le: u64 = if i == 0 { 0 } else { (1u64 << i) - 1 };
                let _ = writeln!(out, "zhuyi_{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "zhuyi_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "zhuyi_{name}_sum {}", h.sum);
            let _ = writeln!(out, "zhuyi_{name}_count {}", h.count);
        };
        for p in Phase::ALL {
            hist(
                &mut out,
                &format!("phase_ns_{}", p.name()),
                &self.phase_ns[p.index()],
            );
        }
        hist(&mut out, "job_wall_us", &self.job_wall_us);
        hist(&mut out, "queue_depth", &self.queue_depth);
        hist(&mut out, "heartbeat_rtt_us", &self.heartbeat_rtt_us);
        out.push_str("# TYPE zhuyi_wire_frames_total counter\n");
        for k in WireKind::ALL {
            let _ = writeln!(
                out,
                "zhuyi_wire_frames_total{{dir=\"sent\",kind=\"{}\"}} {}",
                k.name(),
                self.wire_sent_frames[k.index()]
            );
            let _ = writeln!(
                out,
                "zhuyi_wire_frames_total{{dir=\"recv\",kind=\"{}\"}} {}",
                k.name(),
                self.wire_recv_frames[k.index()]
            );
        }
        let _ = writeln!(out, "zhuyi_telemetry_shards_folded {}", self.shards_folded);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn busy_snapshot() -> Snapshot {
        let r = Registry::new();
        r.inc(Counter::Steals);
        r.add(Counter::EngineTicks, 500);
        r.phase_lap(Phase::Perception, 830);
        r.phase_lap(Phase::Collision, 12);
        r.cert_decline(CertReason::FollowGapTooSmall);
        r.set_gauge(Gauge::LiveWorkers, 3);
        r.wire_sent(WireKind::Result, 420);
        r.wire_recv(WireKind::Assign, 99);
        r.record_job(17, 80_000);
        r.record_job(3, 1_500);
        r.record_queue_depth(4);
        r.record_rtt_us(212);
        r.snapshot()
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = busy_snapshot();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).expect("round trip");
        assert_eq!(back, snap);
        // Truncation and trailing garbage are rejected, not panicked.
        assert!(Snapshot::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(Snapshot::decode(&longer).is_err());
        assert!(Snapshot::decode(&[]).is_err());
    }

    #[test]
    fn merge_is_commutative_on_sums() {
        let a = busy_snapshot();
        let mut b = Snapshot {
            shards_folded: 1,
            ..Snapshot::default()
        };
        b.counters[Counter::Steals.index()] = 10;
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters[Counter::Steals.index()], 11);
        assert_eq!(ab.shards_folded, 2);
    }

    #[test]
    fn json_sections_split_by_determinism() {
        let snap = busy_snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"zhuyi.telemetry.v1\""));
        assert!(json.contains("\"deterministic\""));
        assert!(json.contains("\"wall_clock\""));
        // Deterministic counters in the deterministic section only.
        let det = snap.deterministic_json();
        assert!(det.contains("\"engine_ticks\":500"));
        assert!(!det.contains("steals"));
        assert!(det.contains("\"follow: gap too small\":1"));
        // Per-job records are wall-clock payload.
        assert!(json.contains("[3,1500]"));
    }

    #[test]
    fn prometheus_renders_cumulative_buckets() {
        let snap = busy_snapshot();
        let prom = snap.to_prometheus();
        assert!(prom.contains("zhuyi_phase_ticks_total{phase=\"perception\"} 1"));
        assert!(prom.contains("zhuyi_steals_total 1"));
        assert!(prom.contains("zhuyi_live_workers 3"));
        assert!(prom.contains("zhuyi_job_wall_us_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("zhuyi_cert_declines_total{reason=\"follow: gap too small\"} 1"));
    }
}
