//! Work prioritization: dividing a fixed frame budget across cameras
//! (paper §3.2).
//!
//! "Instead of processing each camera's images at the same frequency, the
//! AV system could process these images at rates proportional to the
//! estimated rates." The allocator grants each camera its Zhuyi demand
//! when the budget allows and spreads the surplus proportionally; when the
//! budget is insufficient it shrinks allocations toward the demands'
//! proportions while flagging the shortfall.

use av_core::units::Fpr;
use serde::{Deserialize, Serialize};
use zhuyi::camera_fpr::CameraEstimate;

/// A frame-rate budget shared by all cameras.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetAllocator {
    /// Total frames per second the in-vehicle computer can process.
    pub total: Fpr,
    /// Floor granted to every camera (a sensor is never fully starved).
    pub min_per_camera: Fpr,
    /// Hardware cap per camera (e.g. the sensor's native 30 FPS).
    pub max_per_camera: Fpr,
}

impl BudgetAllocator {
    /// The paper's baseline: a system provisioned for 30 FPR on each of
    /// `cameras` cameras.
    pub fn provisioned_for_30(cameras: usize) -> Self {
        Self {
            total: Fpr(30.0 * cameras as f64),
            min_per_camera: Fpr(1.0),
            max_per_camera: Fpr(30.0),
        }
    }

    /// Validates the allocator invariants.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated invariant.
    pub fn validate(&self, cameras: usize) -> Result<(), AllocationError> {
        if !(self.total.value() > 0.0 && self.total.is_finite()) {
            return Err(AllocationError::InvalidBudget(self.total));
        }
        if self.min_per_camera.value() < 0.0
            || self.min_per_camera.value() > self.max_per_camera.value()
        {
            return Err(AllocationError::InvalidPerCameraBounds {
                min: self.min_per_camera,
                max: self.max_per_camera,
            });
        }
        if self.min_per_camera.value() * cameras as f64 > self.total.value() + 1e-9 {
            return Err(AllocationError::FloorExceedsBudget {
                cameras,
                min: self.min_per_camera,
                total: self.total,
            });
        }
        Ok(())
    }

    /// Splits the budget across cameras given their Zhuyi demands.
    ///
    /// # Errors
    ///
    /// Returns an error when the allocator is misconfigured for this
    /// camera count.
    pub fn allocate(&self, estimates: &[CameraEstimate]) -> Result<Allocation, AllocationError> {
        self.validate(estimates.len())?;
        let n = estimates.len();
        let min = self.min_per_camera.value();
        let max = self.max_per_camera.value();
        let demands: Vec<f64> = estimates
            .iter()
            .map(|e| e.fpr().value().clamp(min, max))
            .collect();
        let demand_total: f64 = demands.iter().sum();
        let budget = self.total.value();

        let mut rates = vec![0.0; n];
        let satisfied = demand_total <= budget + 1e-9;
        if satisfied {
            // Grant demands, then spread the surplus proportionally to
            // demand (comfort headroom), capped per camera.
            rates.copy_from_slice(&demands);
            let mut surplus = budget - demand_total;
            // Two passes are enough: cameras hitting the cap return their
            // share to the rest.
            for _ in 0..2 {
                if surplus <= 1e-9 {
                    break;
                }
                let open: f64 = rates
                    .iter()
                    .zip(&demands)
                    .filter(|(r, _)| **r < max - 1e-9)
                    .map(|(_, d)| *d)
                    .sum();
                if open <= 0.0 {
                    break;
                }
                let mut used = 0.0;
                for (r, d) in rates.iter_mut().zip(&demands) {
                    if *r < max - 1e-9 {
                        let grant = (surplus * d / open).min(max - *r);
                        *r += grant;
                        used += grant;
                    }
                }
                surplus -= used;
            }
        } else {
            // Shrink toward proportional shares, honoring the floor.
            let scale = (budget - min * n as f64) / (demand_total - min * n as f64).max(1e-9);
            for (r, d) in rates.iter_mut().zip(&demands) {
                *r = min + (d - min).max(0.0) * scale.clamp(0.0, 1.0);
            }
        }
        Ok(Allocation {
            rates: rates.into_iter().map(Fpr).collect(),
            demand_total: Fpr(demand_total),
            satisfied,
        })
    }
}

/// Result of a budget split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Granted per-camera rates, in rig order.
    pub rates: Vec<Fpr>,
    /// Sum of (clamped) demands.
    pub demand_total: Fpr,
    /// `false` when the budget could not cover the demands — a safety
    /// alarm accompanies this state.
    pub satisfied: bool,
}

impl Allocation {
    /// Total rate actually granted.
    pub fn granted_total(&self) -> Fpr {
        self.rates.iter().copied().sum()
    }
}

/// Error configuring or running the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocationError {
    /// The total budget must be positive and finite.
    InvalidBudget(Fpr),
    /// Per-camera bounds are inverted or negative.
    InvalidPerCameraBounds {
        /// Configured floor.
        min: Fpr,
        /// Configured cap.
        max: Fpr,
    },
    /// The per-camera floor times the camera count exceeds the budget.
    FloorExceedsBudget {
        /// Number of cameras.
        cameras: usize,
        /// Configured floor.
        min: Fpr,
        /// Total budget.
        total: Fpr,
    },
}

impl std::fmt::Display for AllocationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationError::InvalidBudget(b) => write!(f, "invalid budget {b}"),
            AllocationError::InvalidPerCameraBounds { min, max } => {
                write!(f, "invalid per-camera bounds [{min}, {max}]")
            }
            AllocationError::FloorExceedsBudget {
                cameras,
                min,
                total,
            } => write!(f, "floor {min} x {cameras} cameras exceeds budget {total}"),
        }
    }
}

impl std::error::Error for AllocationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::units::Seconds;
    use av_perception::camera::CameraKind;
    use av_perception::rig::CameraId;

    fn estimates(latencies: &[f64]) -> Vec<CameraEstimate> {
        latencies
            .iter()
            .enumerate()
            .map(|(i, l)| CameraEstimate {
                camera: CameraId(i),
                kind: CameraKind::ALL[i % 5],
                latency: Seconds(*l),
                limiting_actor: None,
            })
            .collect()
    }

    #[test]
    fn surplus_spreads_proportionally() {
        let alloc = BudgetAllocator {
            total: Fpr(30.0),
            min_per_camera: Fpr(1.0),
            max_per_camera: Fpr(30.0),
        };
        // Demands 10 and 5 (latencies 0.1, 0.2): surplus 15 splits 10:5.
        let a = alloc.allocate(&estimates(&[0.1, 0.2])).expect("valid");
        assert!(a.satisfied);
        assert!((a.rates[0].value() - 20.0).abs() < 1e-6);
        assert!((a.rates[1].value() - 10.0).abs() < 1e-6);
        assert!((a.granted_total().value() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn cap_redirects_surplus() {
        let alloc = BudgetAllocator {
            total: Fpr(40.0),
            min_per_camera: Fpr(1.0),
            max_per_camera: Fpr(30.0),
        };
        // Demands 20 and 2; naive proportional split would push camera 0
        // past the 30 cap; the excess flows to camera 1.
        let a = alloc.allocate(&estimates(&[0.05, 0.5])).expect("valid");
        assert!(a.rates[0].value() <= 30.0 + 1e-9);
        assert!((a.granted_total().value() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn shortage_scales_down_but_honors_floor() {
        let alloc = BudgetAllocator {
            total: Fpr(12.0),
            min_per_camera: Fpr(1.0),
            max_per_camera: Fpr(30.0),
        };
        // Demands 20, 10, 1 (total 31 > 12).
        let a = alloc
            .allocate(&estimates(&[0.05, 0.1, 1.0]))
            .expect("valid");
        assert!(!a.satisfied);
        for r in &a.rates {
            assert!(r.value() >= 1.0 - 1e-9);
        }
        assert!(a.granted_total().value() <= 12.0 + 1e-6);
        // Hungrier cameras still get more.
        assert!(a.rates[0] > a.rates[1]);
        assert!(a.rates[1] > a.rates[2]);
    }

    #[test]
    fn paper_baseline_constructor() {
        let alloc = BudgetAllocator::provisioned_for_30(5);
        assert_eq!(alloc.total, Fpr(150.0));
        alloc.validate(5).expect("valid");
    }

    #[test]
    fn validation_errors() {
        let bad = BudgetAllocator {
            total: Fpr(0.0),
            min_per_camera: Fpr(1.0),
            max_per_camera: Fpr(30.0),
        };
        assert!(matches!(
            bad.validate(3),
            Err(AllocationError::InvalidBudget(_))
        ));
        let inverted = BudgetAllocator {
            total: Fpr(10.0),
            min_per_camera: Fpr(5.0),
            max_per_camera: Fpr(2.0),
        };
        assert!(matches!(
            inverted.validate(1),
            Err(AllocationError::InvalidPerCameraBounds { .. })
        ));
        let floor = BudgetAllocator {
            total: Fpr(3.0),
            min_per_camera: Fpr(2.0),
            max_per_camera: Fpr(30.0),
        };
        assert!(matches!(
            floor.validate(5),
            Err(AllocationError::FloorExceedsBudget { .. })
        ));
        assert!(floor.validate(1).is_ok());
    }

    #[test]
    fn fully_idle_rig_gets_floor_plus_surplus() {
        let alloc = BudgetAllocator::provisioned_for_30(3);
        // All cameras idle (1 FPR demands): everything satisfied, surplus
        // spread evenly (equal demands).
        let a = alloc.allocate(&estimates(&[1.0, 1.0, 1.0])).expect("valid");
        assert!(a.satisfied);
        assert!((a.rates[0].value() - a.rates[1].value()).abs() < 1e-9);
        assert!(a.rates[0].value() <= 30.0 + 1e-9);
    }
}
