//! The Zhuyi-based AV system (paper §3, Fig. 3): online safety checking
//! and work prioritization built on the Zhuyi model.
//!
//! - [`online`] — runs the Eq. 1–5 machinery over the *perceived* world
//!   model and predicted trajectories (post-deployment mode),
//! - [`safety_check`] — alarms when any camera runs below its estimated
//!   safe rate, recommending the paper's three mitigations,
//! - [`prioritize`] — splits a fixed frame budget across cameras in
//!   proportion to their estimated requirements,
//! - [`system`] — the control loop wiring all of it into a running
//!   simulation ([`system::drive`]).
//!
//! # Example
//!
//! ```no_run
//! use av_prediction::kinematic::ConstantAcceleration;
//! use av_scenarios::prelude::*;
//! use av_perception::system::RatePlan;
//! use av_core::prelude::*;
//! use zhuyi_runtime::system::{drive, RuntimeConfig, ZhuyiRuntime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::build(ScenarioId::VehicleFollowing, 0);
//! let sim = scenario.simulation(RatePlan::Uniform(Fpr(30.0)))?;
//! let runtime = ZhuyiRuntime::new(RuntimeConfig::default())?;
//! let (trace, decisions) = drive(sim, &runtime, &ConstantAcceleration);
//! assert!(!trace.collided());
//! println!("{} control decisions", decisions.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod online;
pub mod prioritize;
pub mod report;
pub mod safety_check;
pub mod system;

pub use online::{OnlineConfig, OnlineEstimates, OnlineEstimator};
pub use prioritize::{Allocation, AllocationError, BudgetAllocator};
pub use report::{CameraPeak, ScenarioReport};
pub use safety_check::{check, Alarm, SafetyAction, SafetyVerdict};
pub use system::{drive, RuntimeConfig, RuntimeDecision, ZhuyiRuntime};
