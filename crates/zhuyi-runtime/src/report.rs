//! Pre-deployment scenario reports (paper §3.1).
//!
//! "This modular evaluation of the test will provide per-camera processing
//! rate requirements at every time-step in a tested scenario, which can
//! also be included in the feedback to the system designers to help design
//! a safer and more efficient AV system." — a [`ScenarioReport`] is that
//! feedback artifact: outcome, surrogate safety metrics, per-camera peak
//! requirements and the fraction of a fixed provisioning the scenario
//! actually needs.

use av_core::prelude::*;
use av_perception::camera::CameraKind;
use av_perception::rig::CameraRig;
use av_sim::metrics::{run_metrics, RunMetrics};
use av_sim::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;
use zhuyi::pipeline::{analyze_trace, PipelineConfig};
use zhuyi::TolerableLatencyEstimator;

/// The per-camera peak requirement over a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraPeak {
    /// Camera position.
    pub kind: CameraKind,
    /// Highest FPR requirement over the run.
    pub peak: Fpr,
}

/// Designer feedback for one tested scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario label.
    pub name: String,
    /// Whether the test failed (collision).
    pub collided: bool,
    /// Scenario time covered.
    pub duration: Seconds,
    /// Surrogate safety metrics (minima over the run).
    pub metrics: RunMetrics,
    /// Highest single-camera requirement over all cameras and times.
    pub max_estimated_fpr: Option<Fpr>,
    /// Peak requirement per camera.
    pub camera_peaks: Vec<CameraPeak>,
    /// max over time of the summed front+left+right requirement, relative
    /// to a 3×30-FPR provisioning (Table 1's fraction column).
    pub fraction_of_provisioned: Option<f64>,
}

impl ScenarioReport {
    /// Builds the report by running the offline Zhuyi pipeline over a
    /// recorded trace.
    pub fn from_trace(
        name: impl Into<String>,
        trace: &Trace,
        road_path: &Path,
        rig: &CameraRig,
        estimator: &TolerableLatencyEstimator,
        pipeline: &PipelineConfig,
    ) -> Self {
        let analysis = analyze_trace(&trace.scenes, road_path, rig, estimator, pipeline);
        let camera_peaks = rig
            .iter()
            .map(|(_, cam)| {
                let peak = analysis
                    .camera_latency_series(cam.kind())
                    .iter()
                    .map(|(_, l)| Fpr::from_latency(*l).value())
                    .fold(0.0_f64, f64::max);
                CameraPeak {
                    kind: cam.kind(),
                    peak: Fpr(peak),
                }
            })
            .collect();
        let fraction = analysis
            .max_total_fpr(&[CameraKind::FrontWide, CameraKind::Left, CameraKind::Right])
            .map(|sum| sum.value() / 90.0);
        Self {
            name: name.into(),
            collided: trace.collided(),
            duration: trace.duration(),
            metrics: run_metrics(trace),
            max_estimated_fpr: analysis.max_camera_fpr(),
            camera_peaks,
            fraction_of_provisioned: fraction,
        }
    }
}

impl fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} after {}",
            self.name,
            if self.collided { "COLLISION" } else { "safe" },
            self.duration
        )?;
        if let Some(ttc) = self.metrics.min_ttc {
            writeln!(f, "  min TTC {ttc}")?;
        }
        if let Some(gap) = self.metrics.min_gap {
            writeln!(f, "  min frontal gap {gap}")?;
        }
        if let Some(max) = self.max_estimated_fpr {
            writeln!(f, "  max per-camera requirement {max}")?;
        }
        for peak in &self.camera_peaks {
            writeln!(f, "    {}: {}", peak.kind, peak.peak)?;
        }
        if let Some(fraction) = self.fraction_of_provisioned {
            writeln!(
                f,
                "  fraction of a 3x30-FPR provisioning: {:.0}%",
                fraction * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_perception::system::RatePlan;
    use av_scenarios::catalog::{Scenario, ScenarioId};
    use zhuyi::ZhuyiConfig;

    fn report(id: ScenarioId, fpr: f64) -> ScenarioReport {
        let scenario = Scenario::build(id, 0);
        let trace = scenario
            .simulation(RatePlan::Uniform(Fpr(fpr)))
            .expect("valid plan")
            .run();
        let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("valid");
        let pipeline = PipelineConfig {
            current_latency: Seconds(1.0 / fpr),
            stride: 50,
            ..Default::default()
        };
        ScenarioReport::from_trace(
            id.name(),
            &trace,
            scenario.road.path(),
            &CameraRig::drive_av(),
            &estimator,
            &pipeline,
        )
    }

    #[test]
    fn safe_run_report_is_complete() {
        let r = report(ScenarioId::VehicleFollowing, 30.0);
        assert!(!r.collided);
        assert!(r.max_estimated_fpr.expect("estimates present").value() >= 1.0);
        assert_eq!(r.camera_peaks.len(), 5);
        assert!(r.metrics.min_ttc.is_some());
        let fraction = r.fraction_of_provisioned.expect("three cameras present");
        assert!((0.0..=1.5).contains(&fraction));
        let text = r.to_string();
        assert!(text.contains("safe"));
        assert!(text.contains("front-120"));
    }

    #[test]
    fn collided_run_is_flagged() {
        let r = report(ScenarioId::CutOutFast, 2.0);
        assert!(r.collided);
        assert!(r.to_string().contains("COLLISION"));
    }

    #[test]
    fn front_camera_dominates_in_frontal_scenario() {
        let r = report(ScenarioId::VehicleFollowing, 30.0);
        let peak_of = |kind: CameraKind| {
            r.camera_peaks
                .iter()
                .find(|p| p.kind == kind)
                .expect("camera present")
                .peak
        };
        assert!(peak_of(CameraKind::FrontWide) >= peak_of(CameraKind::Left));
        assert!(peak_of(CameraKind::FrontWide) >= peak_of(CameraKind::Rear));
    }
}
