//! The safety-check block of the Zhuyi-based AV system (paper §3.2).
//!
//! "With Zhuyi's estimated per-camera requirements, the system can check
//! whether the current per-camera processing rates are above the
//! estimates. If not, there is a safety concern with a high potential for
//! a collision" — the check raises an alarm and recommends one of the
//! paper's three mitigations.

use av_core::units::Fpr;
use av_perception::camera::CameraKind;
use av_perception::rig::CameraId;
use serde::{Deserialize, Serialize};
use zhuyi::camera_fpr::CameraEstimate;

/// A camera running below its estimated safe rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// The under-provisioned camera.
    pub camera: CameraId,
    /// Its rig position.
    pub kind: CameraKind,
    /// The rate Zhuyi requires.
    pub required: Fpr,
    /// The rate it is actually running at.
    pub actual: Fpr,
}

impl Alarm {
    /// How far below the requirement the camera runs, in frames per
    /// second.
    pub fn deficit(&self) -> Fpr {
        Fpr((self.required.value() - self.actual.value()).max(0.0))
    }
}

/// The paper's three mitigation actions (§3.2, Safety Check).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SafetyAction {
    /// "Request the system to raise the processing rate for the cameras
    /// that fall below the estimation."
    RaiseRate {
        /// Which camera to speed up.
        camera: CameraId,
        /// The minimum rate to reach.
        to: Fpr,
    },
    /// "Operate in a limited functionality mode that compromises
    /// non-essential tasks."
    DegradeNonEssential,
    /// "Activate an emergency back-up system, if available."
    ActivateBackup,
}

/// Outcome of one safety check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafetyVerdict {
    /// `true` when every camera meets its requirement.
    pub safe: bool,
    /// Cameras in deficit.
    pub alarms: Vec<Alarm>,
    /// Recommended mitigations, mildest first.
    pub recommended: Vec<SafetyAction>,
}

/// Headroom factor: a camera is alarmed only when it runs below
/// `required` (no margin); mitigation requests add this factor on top.
const RAISE_MARGIN: f64 = 1.1;

/// Compares current per-camera rates against Zhuyi estimates.
///
/// `current` must be indexed like `estimates` (rig order).
///
/// # Panics
///
/// Panics if the two slices have different lengths — they must describe
/// the same rig.
///
/// ```
/// use av_core::units::{Fpr, Seconds};
/// use av_perception::rig::{CameraId, CameraRig};
/// use zhuyi::camera_fpr::CameraEstimate;
/// use zhuyi_runtime::safety_check::check;
///
/// # use av_perception::camera::CameraKind;
/// let estimates = vec![CameraEstimate {
///     camera: CameraId(0), kind: CameraKind::FrontWide,
///     latency: Seconds(0.1), limiting_actor: None,
/// }];
/// let verdict = check(&[Fpr(5.0)], &estimates);
/// assert!(!verdict.safe); // 5 FPR < required 10 FPR
/// ```
pub fn check(current: &[Fpr], estimates: &[CameraEstimate]) -> SafetyVerdict {
    assert_eq!(
        current.len(),
        estimates.len(),
        "rate vector and estimates must describe the same rig"
    );
    let mut alarms = Vec::new();
    for (rate, est) in current.iter().zip(estimates) {
        let required = est.fpr();
        if rate.value() + 1e-9 < required.value() {
            alarms.push(Alarm {
                camera: est.camera,
                kind: est.kind,
                required,
                actual: *rate,
            });
        }
    }
    let mut recommended = Vec::new();
    if !alarms.is_empty() {
        for alarm in &alarms {
            recommended.push(SafetyAction::RaiseRate {
                camera: alarm.camera,
                to: Fpr(alarm.required.value() * RAISE_MARGIN),
            });
        }
        recommended.push(SafetyAction::DegradeNonEssential);
        // Large deficits escalate to the backup system.
        if alarms.iter().any(|a| a.deficit().value() > 10.0) {
            recommended.push(SafetyAction::ActivateBackup);
        }
    }
    SafetyVerdict {
        safe: alarms.is_empty(),
        alarms,
        recommended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::units::Seconds;

    fn estimate(idx: usize, kind: CameraKind, latency: f64) -> CameraEstimate {
        CameraEstimate {
            camera: CameraId(idx),
            kind,
            latency: Seconds(latency),
            limiting_actor: None,
        }
    }

    #[test]
    fn all_sufficient_is_safe() {
        let estimates = vec![
            estimate(0, CameraKind::FrontWide, 0.2), // needs 5
            estimate(1, CameraKind::Left, 1.0),      // needs 1
        ];
        let verdict = check(&[Fpr(10.0), Fpr(1.0)], &estimates);
        assert!(verdict.safe);
        assert!(verdict.alarms.is_empty());
        assert!(verdict.recommended.is_empty());
    }

    #[test]
    fn deficit_raises_alarm_and_rate_request() {
        let estimates = vec![estimate(0, CameraKind::FrontWide, 0.1)]; // needs 10
        let verdict = check(&[Fpr(4.0)], &estimates);
        assert!(!verdict.safe);
        assert_eq!(verdict.alarms.len(), 1);
        let alarm = verdict.alarms[0];
        assert!((alarm.deficit().value() - 6.0).abs() < 1e-9);
        assert!(verdict.recommended.iter().any(|a| matches!(
            a,
            SafetyAction::RaiseRate { camera, to } if camera.0 == 0 && to.value() >= 10.0
        )));
        assert!(verdict
            .recommended
            .contains(&SafetyAction::DegradeNonEssential));
    }

    #[test]
    fn huge_deficit_escalates_to_backup() {
        let estimates = vec![estimate(0, CameraKind::FrontWide, 0.04)]; // needs 25
        let verdict = check(&[Fpr(2.0)], &estimates);
        assert!(verdict.recommended.contains(&SafetyAction::ActivateBackup));
    }

    #[test]
    fn small_deficit_does_not_escalate() {
        let estimates = vec![estimate(0, CameraKind::FrontWide, 0.2)]; // needs 5
        let verdict = check(&[Fpr(4.0)], &estimates);
        assert!(!verdict.safe);
        assert!(!verdict.recommended.contains(&SafetyAction::ActivateBackup));
    }

    #[test]
    #[should_panic(expected = "same rig")]
    fn mismatched_lengths_panic() {
        let estimates = vec![estimate(0, CameraKind::FrontWide, 0.2)];
        let _ = check(&[Fpr(1.0), Fpr(2.0)], &estimates);
    }
}
