//! The complete Zhuyi-based AV system loop (paper Fig. 3).
//!
//! Perception → world model → trajectory prediction → **Zhuyi model** →
//! safety check + work prioritization → back into perception's per-camera
//! rates. [`drive`] runs a closed-loop simulation with this feedback
//! attached, which is how the paper's post-deployment experiments (Fig. 7)
//! and the prioritization examples are produced.

use crate::online::{OnlineConfig, OnlineEstimates, OnlineEstimator};
use crate::prioritize::{Allocation, BudgetAllocator};
use crate::safety_check::{check, SafetyVerdict};
use av_core::prelude::*;
use av_core::scene::Scene;
use av_prediction::predictor::TrajectoryPredictor;
use av_sim::engine::{Simulation, StepOutcome};
use av_sim::observer::TraceRecorder;
use av_sim::trace::Trace;
use serde::{Deserialize, Serialize};
use zhuyi::config::ConfigError;

/// Configuration of the runtime loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Online estimator parameters.
    pub online: OnlineConfig,
    /// How often the Zhuyi model runs (the paper estimates it completes
    /// within 2 ms, so 100 ms control periods are generous).
    pub control_period: Seconds,
    /// Frame budget for work prioritization; `None` runs the safety check
    /// only.
    pub budget: Option<BudgetAllocator>,
    /// Whether allocations are written back into the perception system
    /// (the work-prioritization loop), or merely recorded (monitoring).
    pub apply_allocation: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            online: OnlineConfig::default(),
            control_period: Seconds(0.1),
            budget: None,
            apply_allocation: false,
        }
    }
}

/// Everything the runtime decided at one control step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeDecision {
    /// When the decision was taken.
    pub time: Seconds,
    /// The online Zhuyi estimates.
    pub estimates: OnlineEstimates,
    /// Safety check against the rates in force *before* this decision.
    pub verdict: SafetyVerdict,
    /// Budget split, when prioritization is enabled.
    pub allocation: Option<Allocation>,
}

/// The online Zhuyi subsystem: estimator + safety check + prioritizer.
#[derive(Debug, Clone)]
pub struct ZhuyiRuntime {
    online: OnlineEstimator,
    config: RuntimeConfig,
}

impl ZhuyiRuntime {
    /// Creates the runtime.
    ///
    /// # Errors
    ///
    /// Returns the first violated model-configuration invariant.
    pub fn new(config: RuntimeConfig) -> Result<Self, ConfigError> {
        Ok(Self {
            online: OnlineEstimator::new(config.online)?,
            config,
        })
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Runs one control step against a live simulation: estimate from the
    /// perceived world, check safety, optionally re-prioritize camera
    /// rates.
    pub fn control_step(
        &self,
        sim: &mut Simulation,
        predictor: &dyn TrajectoryPredictor,
    ) -> RuntimeDecision {
        let now = sim.time();
        // Perceived scene: the ego knows its own state (localization);
        // actors come from confirmed, dead-reckoned world-model tracks.
        let ego = sim.ego().to_agent(sim.road());
        let tracked = sim.perception().world().coasted_agents(now);
        let perceived = Scene::new(now, ego, tracked);
        let path = sim.road().path().clone();
        let rates = sim.perception().rates();
        let current_latency = rates
            .iter()
            .map(|r| r.latency())
            .fold(Seconds(f64::INFINITY), Seconds::min);

        let estimates = self.online.estimate(
            &perceived,
            &path,
            sim.perception().rig(),
            predictor,
            current_latency,
        );
        let verdict = check(&rates, &estimates.cameras);
        let allocation = self.config.budget.and_then(|b| {
            let alloc = b.allocate(&estimates.cameras).ok()?;
            if self.config.apply_allocation {
                for (i, rate) in alloc.rates.iter().enumerate() {
                    let _ = sim
                        .perception_mut()
                        .set_rate(av_perception::rig::CameraId(i), *rate);
                }
            }
            Some(alloc)
        });
        RuntimeDecision {
            time: now,
            estimates,
            verdict,
            allocation,
        }
    }
}

/// Drives `sim` to completion with the Zhuyi runtime in the loop, running
/// a control step every [`RuntimeConfig::control_period`].
///
/// Returns the scenario trace and the decision log.
pub fn drive(
    mut sim: Simulation,
    runtime: &ZhuyiRuntime,
    predictor: &dyn TrajectoryPredictor,
) -> (Trace, Vec<RuntimeDecision>) {
    let mut decisions = Vec::new();
    let mut recorder = TraceRecorder::new(sim.config().dt);
    let period = runtime.config().control_period.value().max(1e-3);
    let mut next_control = 0.0;
    loop {
        if sim.time().value() + 1e-12 >= next_control {
            decisions.push(runtime.control_step(&mut sim, predictor));
            next_control = sim.time().value() + period;
        }
        match sim.step_with(&mut recorder) {
            StepOutcome::Running => continue,
            StepOutcome::Collided | StepOutcome::Finished => break,
        }
    }
    (recorder.into_trace(), decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_perception::camera::CameraKind;
    use av_perception::rig::CameraRig;
    use av_perception::system::{PerceptionSystem, RatePlan};
    use av_perception::world_model::TrackerConfig;
    use av_prediction::kinematic::ConstantAcceleration;
    use av_sim::engine::SimulationConfig;
    use av_sim::policy::{EgoVehicle, PolicyConfig};
    use av_sim::road::{LaneId, Road};
    use av_sim::script::{Action, ActorScript, Placement, Trigger};

    /// Vehicle-following-style scenario: lead brakes at t = 2 s.
    fn sim(fpr: f64) -> Simulation {
        sim_with_lead(fpr, 110.0)
    }

    /// Same with a configurable lead position (closer = harsher).
    fn sim_with_lead(fpr: f64, lead_s: f64) -> Simulation {
        let road = Road::straight_three_lane(Meters(3000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(28.0)),
        );
        let lead = ActorScript::cruising(
            ActorId(1),
            Placement {
                lane: LaneId(1),
                s: Meters(lead_s),
                speed: MetersPerSecond(28.0),
            },
        )
        .with_maneuver(
            Trigger::AtTime(Seconds(2.0)),
            Action::HardBrake {
                decel: MetersPerSecondSquared(6.0),
            },
        );
        let perception = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig::default(),
        )
        .expect("valid plan");
        Simulation::new(
            road,
            ego,
            vec![lead],
            perception,
            SimulationConfig {
                duration: Seconds(15.0),
                ..Default::default()
            },
        )
    }

    #[test]
    fn decisions_are_logged_each_period() {
        let runtime = ZhuyiRuntime::new(RuntimeConfig::default()).expect("valid");
        let (trace, decisions) = drive(sim(30.0), &runtime, &ConstantAcceleration);
        assert!(!trace.collided());
        // 15 s at 10 Hz control: ~150 decisions.
        assert!(
            (140..=160).contains(&decisions.len()),
            "{}",
            decisions.len()
        );
    }

    #[test]
    fn front_camera_requirement_spikes_during_braking() {
        let runtime = ZhuyiRuntime::new(RuntimeConfig::default()).expect("valid");
        let (_, decisions) = drive(sim(30.0), &runtime, &ConstantAcceleration);
        let front_latency = |d: &RuntimeDecision| {
            d.estimates
                .camera(CameraKind::FrontWide)
                .expect("front camera")
                .latency
        };
        let before: Seconds = decisions
            .iter()
            .filter(|d| d.time < Seconds(1.5))
            .map(front_latency)
            .fold(Seconds(f64::INFINITY), Seconds::min);
        let during: Seconds = decisions
            .iter()
            .filter(|d| d.time > Seconds(2.5) && d.time < Seconds(6.0))
            .map(front_latency)
            .fold(Seconds(f64::INFINITY), Seconds::min);
        assert!(
            during < before,
            "braking must tighten the requirement: before {before}, during {during}"
        );
    }

    #[test]
    fn safety_check_fires_when_underprovisioned() {
        // Cameras at 2 FPR with a close, hard-braking lead: the
        // requirement exceeds the actual rate and an alarm must fire.
        let runtime = ZhuyiRuntime::new(RuntimeConfig::default()).expect("valid");
        let (_, decisions) = drive(sim_with_lead(2.0, 80.0), &runtime, &ConstantAcceleration);
        assert!(
            decisions.iter().any(|d| !d.verdict.safe),
            "no alarm despite 2 FPR cameras in a braking scenario"
        );
    }

    #[test]
    fn prioritization_reallocates_toward_front() {
        let config = RuntimeConfig {
            budget: Some(BudgetAllocator {
                total: Fpr(40.0),
                min_per_camera: Fpr(1.0),
                max_per_camera: Fpr(30.0),
            }),
            apply_allocation: true,
            ..Default::default()
        };
        let runtime = ZhuyiRuntime::new(config).expect("valid");
        let simulation = sim(8.0);
        let rig = simulation.perception().rig().clone();
        let front = rig.find(CameraKind::FrontWide).expect("front camera");
        let rear = rig.find(CameraKind::Rear).expect("rear camera");
        let (trace, decisions) = drive(simulation, &runtime, &ConstantAcceleration);
        assert!(!trace.collided());
        // Find a decision during braking: the front camera must be granted
        // more than the rear.
        let braking = decisions
            .iter()
            .filter(|d| d.time > Seconds(3.0) && d.time < Seconds(6.0))
            .filter_map(|d| d.allocation.as_ref())
            .collect::<Vec<_>>();
        assert!(!braking.is_empty());
        assert!(
            braking
                .iter()
                .any(|a| a.rates[front.0].value() > a.rates[rear.0].value() + 1.0),
            "front camera never prioritized over rear"
        );
    }
}
