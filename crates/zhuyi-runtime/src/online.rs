//! Online (post-deployment) Zhuyi estimation (paper §3.2, Fig. 3).
//!
//! The deployed AV cannot see ground truth: the ego's and actors' current
//! states come from the perceived world model, and future states from a
//! trajectory predictor. The online estimator runs the same Eq. 1–5
//! machinery over that perceived information, producing the per-camera
//! processing-rate requirements that feed the safety check and the work
//! prioritizer.

use av_core::prelude::*;
use av_core::scene::Scene;
use av_perception::rig::CameraRig;
use av_prediction::predictor::TrajectoryPredictor;
use serde::{Deserialize, Serialize};
use zhuyi::aggregate::{aggregate_latencies, Aggregation};
use zhuyi::camera_fpr::{per_camera_fpr, ActorEstimate, CameraEstimate};
use zhuyi::config::ConfigError;
use zhuyi::estimator::{EgoKinematics, SearchOutcome, TolerableLatencyEstimator};
use zhuyi::future::{ActorFuture, TrajectoryFuture};
use zhuyi::ZhuyiConfig;

/// Configuration of the online estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// The underlying Zhuyi model parameters.
    pub zhuyi: ZhuyiConfig,
    /// Eq. 4 aggregation across predicted trajectories.
    pub aggregation: Aggregation,
    /// How far ahead the predictor is asked to roll trajectories.
    pub prediction_horizon: Seconds,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            zhuyi: ZhuyiConfig::paper(),
            aggregation: Aggregation::WorstCase,
            prediction_horizon: Seconds(8.0),
        }
    }
}

/// One online estimation step's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineEstimates {
    /// When the estimate was produced.
    pub time: Seconds,
    /// Per-actor aggregated tolerable latencies.
    pub actors: Vec<ActorEstimate>,
    /// Per-camera requirements (Eq. 5), indexed like the rig.
    pub cameras: Vec<CameraEstimate>,
}

impl OnlineEstimates {
    /// The requirement for a camera of the given kind, if present.
    pub fn camera(&self, kind: av_perception::camera::CameraKind) -> Option<&CameraEstimate> {
        self.cameras.iter().find(|c| c.kind == kind)
    }
}

/// Runs the Zhuyi model online over perceived state.
#[derive(Debug, Clone)]
pub struct OnlineEstimator {
    estimator: TolerableLatencyEstimator,
    aggregation: Aggregation,
    horizon: Seconds,
}

impl OnlineEstimator {
    /// Creates the estimator.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration invariant.
    pub fn new(config: OnlineConfig) -> Result<Self, ConfigError> {
        config
            .aggregation
            .validate()
            .map_err(|_| ConfigError::FactorOutOfRange {
                name: "aggregation percentile",
                value: match config.aggregation {
                    Aggregation::Percentile(n) => n,
                    _ => f64::NAN,
                },
            })?;
        Ok(Self {
            estimator: TolerableLatencyEstimator::new(config.zhuyi)?,
            aggregation: config.aggregation,
            horizon: config.prediction_horizon,
        })
    }

    /// The underlying Zhuyi configuration.
    pub fn config(&self) -> &ZhuyiConfig {
        self.estimator.config()
    }

    /// Produces per-actor and per-camera estimates from the *perceived*
    /// scene (ego from localization, actors from confirmed world-model
    /// tracks), using `predictor` for future states.
    ///
    /// `current_latency` is l₀, the per-frame processing latency the
    /// perception system currently runs at (feeds the α confirmation-delay
    /// term).
    pub fn estimate(
        &self,
        perceived: &Scene,
        path: &Path,
        rig: &CameraRig,
        predictor: &dyn TrajectoryPredictor,
        current_latency: Seconds,
    ) -> OnlineEstimates {
        let ego = EgoKinematics::from_state(&perceived.ego.state);
        let mut actors = Vec::with_capacity(perceived.actors.len());
        for actor in &perceived.actors {
            let futures = predictor.predict(actor, perceived.time, self.horizon);
            if futures.is_empty() {
                continue;
            }
            let mut samples = Vec::with_capacity(futures.len());
            let mut worst = None;
            let mut stats = zhuyi::estimator::SearchStats::default();
            let mut any_infeasible = false;
            let mut all_unconstrained = true;
            for traj in futures {
                let future = TrajectoryFuture::new(
                    path.clone(),
                    &perceived.ego.state,
                    perceived.ego.dims,
                    actor.dims,
                    traj,
                    perceived.time,
                    self.estimator.config().corridor_margin,
                );
                let prob = future.probability();
                let est = self
                    .estimator
                    .tolerable_latency(ego, &future, current_latency);
                stats.absorb(est.stats);
                any_infeasible |= est.outcome == SearchOutcome::Infeasible;
                all_unconstrained &= est.outcome == SearchOutcome::Unconstrained;
                if worst.is_none_or(|w| est.latency < w) {
                    worst = Some(est.latency);
                }
                samples.push((est.latency, prob));
            }
            let latency = aggregate_latencies(&samples, self.aggregation)
                .unwrap_or(self.estimator.config().max_latency);
            let outcome = if all_unconstrained {
                SearchOutcome::Unconstrained
            } else if any_infeasible && latency <= self.estimator.config().min_latency {
                SearchOutcome::Infeasible
            } else {
                SearchOutcome::Tolerable
            };
            actors.push(ActorEstimate {
                actor: actor.id,
                latency,
                outcome,
                stats,
            });
        }
        let cameras = per_camera_fpr(rig, perceived, &actors, self.estimator.config().max_latency);
        OnlineEstimates {
            time: perceived.time,
            actors,
            cameras,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_perception::camera::CameraKind;
    use av_prediction::kinematic::{ConstantAcceleration, ConstantVelocity};

    fn scene(actors: Vec<Agent>) -> Scene {
        let ego = Agent::new(
            ActorId::EGO,
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(0.0, 0.0),
                Radians(0.0),
                MetersPerSecond(25.0),
                MetersPerSecondSquared::ZERO,
            ),
        );
        Scene::new(Seconds(5.0), ego, actors)
    }

    fn lead(v: f64, a: f64, x: f64) -> Agent {
        Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(x, 0.0),
                Radians(0.0),
                MetersPerSecond(v),
                MetersPerSecondSquared(a),
            ),
        )
    }

    fn setup() -> (OnlineEstimator, Path, CameraRig) {
        (
            OnlineEstimator::new(OnlineConfig::default()).expect("valid config"),
            Path::straight(Vec2::new(-100.0, 0.0), Radians(0.0), Meters(3000.0)),
            CameraRig::drive_av(),
        )
    }

    const L0: Seconds = Seconds(1.0 / 30.0);

    #[test]
    fn braking_lead_constrains_front_camera() {
        let (est, path, rig) = setup();
        let sc = scene(vec![lead(20.0, -5.0, 60.0)]);
        let out = est.estimate(&sc, &path, &rig, &ConstantAcceleration, L0);
        assert_eq!(out.actors.len(), 1);
        let front = out.camera(CameraKind::FrontWide).expect("front camera");
        assert!(
            front.latency < Seconds(1.0),
            "braking lead must constrain, got {}",
            front.latency
        );
        assert_eq!(front.limiting_actor, Some(ActorId(1)));
        // Side cameras idle.
        let left = out.camera(CameraKind::Left).expect("left camera");
        assert_eq!(left.latency, Seconds(1.0));
    }

    #[test]
    fn prediction_model_changes_estimate() {
        let (est, path, rig) = setup();
        // Lead currently braking hard: CA foresees it stopping (dangerous),
        // CV assumes it keeps speed (benign).
        let sc = scene(vec![lead(22.0, -6.0, 70.0)]);
        let ca = est.estimate(&sc, &path, &rig, &ConstantAcceleration, L0);
        let cv = est.estimate(&sc, &path, &rig, &ConstantVelocity, L0);
        let l_ca = ca.camera(CameraKind::FrontWide).expect("front").latency;
        let l_cv = cv.camera(CameraKind::FrontWide).expect("front").latency;
        assert!(
            l_ca < l_cv,
            "constant-acceleration future must be stricter: {l_ca} vs {l_cv}"
        );
    }

    #[test]
    fn empty_scene_keeps_all_cameras_idle() {
        let (est, path, rig) = setup();
        let out = est.estimate(&scene(vec![]), &path, &rig, &ConstantVelocity, L0);
        assert!(out.actors.is_empty());
        assert_eq!(out.cameras.len(), rig.len());
        for cam in &out.cameras {
            assert_eq!(cam.latency, Seconds(1.0));
            assert!((cam.fpr().value() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn time_is_propagated() {
        let (est, path, rig) = setup();
        let out = est.estimate(&scene(vec![]), &path, &rig, &ConstantVelocity, L0);
        assert_eq!(out.time, Seconds(5.0));
    }

    #[test]
    fn invalid_percentile_rejected() {
        let cfg = OnlineConfig {
            aggregation: Aggregation::Percentile(500.0),
            ..Default::default()
        };
        assert!(OnlineEstimator::new(cfg).is_err());
    }
}
