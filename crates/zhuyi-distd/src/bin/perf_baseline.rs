//! `perf_baseline` — measure the streaming simulation core against the
//! classic trace-recording path and record the result as
//! `results/BENCH_sim.json`.
//!
//! Two measurements, both over the real scenario catalog:
//!
//! 1. **single-run throughput** (ticks/sec): every selected scenario at
//!    30 FPR, once through `Scenario::run_at` (full trace) and once
//!    through `Scenario::outcome_at` (streaming `MetricsObserver`);
//! 2. **MSF catalog sweep** (sims/sec): the paper's Table-1 workload —
//!    scenarios × jittered variants × `min_safe_fpr` over the rate grid —
//!    executed by the fleet engine metrics-only vs. with
//!    `ExecOptions::record_traces` forcing full traces;
//! 3. **batched MSF sweep** (sims/sec): the same workload through the
//!    lane-batched lockstep backend (`--batch-lanes 0`), measured
//!    *interleaved* with the per-rate path — alternating A/B within each
//!    repetition — so co-tenant load hits both sides equally; exports
//!    are asserted byte-identical across backends;
//! 4. **telemetry overhead**: the batched MSF sweep with no telemetry
//!    registry installed vs. with one recording, interleaved the same
//!    way; the disabled side pins the zero-overhead-when-off contract
//!    and the committed `on_vs_off` ratio is CI-asserted;
//! 5. **shard scaling** (sims/sec per worker-process count): the same
//!    streaming MSF sweep distributed across 1/2/4 spawned `fleet_shard`
//!    processes via `zhuyi-distd`, each run's exports asserted
//!    byte-identical to the single-process sweep. Skipped (and annotated
//!    as such) on single-core machines, where the committed numbers
//!    would only record scheduler noise.
//!
//! Every timed section runs `--reps` repetitions (default 5) and reports
//! the **median** with the min/max spread — medians reject co-tenant
//! noise far better than best-of, and the spread makes residual noise
//! visible in the committed artifact instead of silently shaping it.
//!
//! Every mode must produce identical sweep exports (asserted here), so
//! the speedups are like-for-like measurements, not changed experiments.
//!
//! ```text
//! USAGE:
//!   perf_baseline [--scenarios all|0,1,5] [--variants N]
//!                 [--rates 1,2,...,30] [--workers N]
//!                 [--shards 1,2,4|none] [--out NAME]
//! ```
//!
//! Defaults reproduce the acceptance workload: all nine scenarios,
//! 10 variants, the paper rate grid, one worker (pure single-thread
//! core comparison), writing `results/BENCH_sim.json`.

use av_core::prelude::*;
use av_scenarios::catalog::{Scenario, ScenarioId, PAPER_RATE_GRID};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;
use zhuyi_distd::{default_worker_binary, run_distributed, DistConfig};
use zhuyi_fleet::{cli, run_sweep_with, ExecOptions, JobOutcome, SweepPlan};

#[derive(Debug)]
struct Args {
    scenarios: Vec<ScenarioId>,
    variants: u64,
    rates: Vec<u32>,
    workers: usize,
    shards: Vec<u32>,
    shards_explicit: bool,
    reps: u32,
    baseline_s: Option<f64>,
    prev_sims_per_s: Option<f64>,
    prev_remeasured_sims_per_s: Option<f64>,
    out: String,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scenarios: ScenarioId::ALL.to_vec(),
            variants: 10,
            rates: PAPER_RATE_GRID.to_vec(),
            workers: 1,
            shards: vec![1, 2, 4],
            shards_explicit: false,
            reps: 5,
            baseline_s: None,
            prev_sims_per_s: None,
            prev_remeasured_sims_per_s: None,
            out: "BENCH_sim.json".to_string(),
        }
    }
}

/// The previous committed benchmark's streaming MSF throughput, read from
/// the existing `results/<out>` before it is overwritten — the
/// before/after hook that makes each regenerated `BENCH_sim.json` carry
/// its own against-last-PR speedup.
fn previous_streaming_sims_per_s(out: &str) -> Option<f64> {
    let text = std::fs::read_to_string(zhuyi_bench::results_dir().join(out)).ok()?;
    // Hand-rolled extraction (serde is a shim): the field appears once,
    // inside the "msf_sweep" object.
    let tail = &text[text.find("\"msf_sweep\"")?..];
    let tail = &tail[tail.find("\"streaming_sims_per_s\":")?..];
    let value = tail.split(':').nth(1)?.split([',', '}']).next()?.trim();
    value.parse().ok()
}

/// Parses `--shards`: `none` to skip the shard-scaling phase, or a
/// comma-separated set of worker-process counts (sorted, deduplicated,
/// all `>= 1`).
fn parse_shards(spec: &str) -> Result<Vec<u32>, String> {
    if spec.trim() == "none" {
        return Ok(Vec::new());
    }
    let mut shards: Vec<u32> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad shard count {s:?}"))
        })
        .collect::<Result<_, String>>()?;
    shards.sort_unstable();
    shards.dedup();
    if shards.first() == Some(&0) {
        return Err("shard worker counts must be >= 1".to_string());
    }
    Ok(shards)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--scenarios" => args.scenarios = cli::parse_scenarios(&value("--scenarios")?)?,
            "--variants" => {
                args.variants = value("--variants")?
                    .parse()
                    .map_err(|_| "bad --variants".to_string())?
            }
            "--rates" => args.rates = cli::parse_rates(&value("--rates")?)?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers".to_string())?
            }
            "--shards" => {
                args.shards = parse_shards(&value("--shards")?)?;
                args.shards_explicit = true;
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|_| "bad --reps".to_string())?
            }
            "--baseline-s" => {
                args.baseline_s = Some(
                    value("--baseline-s")?
                        .parse()
                        .map_err(|_| "bad --baseline-s".to_string())?,
                )
            }
            "--prev-sims-per-s" => {
                args.prev_sims_per_s = Some(
                    value("--prev-sims-per-s")?
                        .parse()
                        .map_err(|_| "bad --prev-sims-per-s".to_string())?,
                )
            }
            "--prev-remeasured-sims-per-s" => {
                args.prev_remeasured_sims_per_s = Some(
                    value("--prev-remeasured-sims-per-s")?
                        .parse()
                        .map_err(|_| "bad --prev-remeasured-sims-per-s".to_string())?,
                )
            }
            "--out" => args.out = value("--out")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.variants == 0 {
        return Err("--variants must be >= 1".to_string());
    }
    if args.workers == 0 {
        return Err("--workers must be >= 1".to_string());
    }
    if args.rates.is_empty() {
        return Err("--rates must name at least one rate".to_string());
    }
    if args.reps == 0 {
        return Err("--reps must be >= 1".to_string());
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "perf_baseline — streaming vs trace-recording simulation-core benchmark\n\n\
         USAGE:\n  perf_baseline [--scenarios all|0,1,5] [--variants N]\n\
         \x20              [--rates 1,2,...,30] [--workers N] [--reps N]\n\
         \x20              [--shards 1,2,4|none] [--baseline-s SECS] [--out NAME]\n\n\
         Writes results/<NAME> (default BENCH_sim.json): single-run ticks/sec and\n\
         MSF-sweep sims/sec for the recorded and streaming paths, plus speedups,\n\
         plus a shard_scaling section measuring the same streaming sweep sharded\n\
         across --shards spawned fleet_shard worker processes (build fleet_shard\n\
         first; every distributed run's exports are asserted byte-identical).\n\
         Each measurement is the best of --reps repetitions (noise rejection).\n\
         --baseline-s records an externally measured wall time for the identical\n\
         sweep on the pre-streaming engine (e.g. the previous commit's\n\
         `fleet_sweep --mode msf --variants N --workers 1`) into the JSON, so the\n\
         against-baseline speedup is part of the committed artifact.\n\
         The streaming throughput of the existing results/<NAME> (or an explicit\n\
         --prev-sims-per-s, e.g. the previous commit's binary re-measured on this\n\
         machine) is carried into a vs_previous section with the before/after ratio."
    );
}

/// Median / min / max of a set of timing samples (seconds).
#[derive(Debug, Clone, Copy)]
struct Spread {
    median: f64,
    min: f64,
    max: f64,
}

fn spread(samples: &[f64]) -> Spread {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    assert!(n > 0, "spread of no samples");
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    Spread {
        median,
        min: sorted[0],
        max: sorted[n - 1],
    }
}

/// One pass over every selected scenario (seed 0) at 30 FPR; returns
/// (total ticks, seconds).
fn single_run_pass(scenarios: &[ScenarioId], streaming: bool) -> (u64, f64) {
    let start = Instant::now();
    let mut ticks = 0u64;
    for &id in scenarios {
        let scenario = Scenario::build(id, 0);
        if streaming {
            ticks += scenario.outcome_at(Fpr(30.0)).ticks;
        } else {
            ticks += scenario.run_at(Fpr(30.0)).scenes.len() as u64;
        }
    }
    (ticks, start.elapsed().as_secs_f64())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            usage();
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    // --- Phase 1: single-run throughput (ticks/sec). -------------------
    // One throwaway pass warms code and allocator; sections are measured
    // interleaved (recorded/streaming alternating within each rep) and
    // summarized as median + min/max over --reps repetitions.
    let _ = single_run_pass(&args.scenarios[..1.min(args.scenarios.len())], true);
    let mut recorded_samples = Vec::new();
    let mut streaming_samples = Vec::new();
    let mut recorded_ticks = 0u64;
    let mut streaming_ticks = 0u64;
    for _ in 0..args.reps {
        let (ticks, seconds) = single_run_pass(&args.scenarios, false);
        recorded_ticks = ticks;
        recorded_samples.push(seconds);
        let (ticks, seconds) = single_run_pass(&args.scenarios, true);
        streaming_ticks = ticks;
        streaming_samples.push(seconds);
    }
    assert_eq!(
        recorded_ticks, streaming_ticks,
        "both paths must simulate the same ticks"
    );
    let recorded_run = spread(&recorded_samples);
    let streaming_run = spread(&streaming_samples);
    println!(
        "single-run ({} scenarios @ 30 FPR, median of {} reps): recorded {:.0} ticks/s, streaming {:.0} ticks/s ({:.2}x)",
        args.scenarios.len(),
        args.reps,
        recorded_ticks as f64 / recorded_run.median.max(1e-9),
        streaming_ticks as f64 / streaming_run.median.max(1e-9),
        recorded_run.median / streaming_run.median.max(1e-9),
    );

    // --- Phase 2: the MSF catalog sweep (sims/sec). --------------------
    let plan = SweepPlan::builder()
        .scenarios(args.scenarios.iter().copied())
        .jittered_variants(args.variants)
        .min_safe_fpr(args.rates.clone())
        .build();
    println!(
        "msf sweep: {} jobs ({} scenarios x {} variants, grid {:?}), {} worker(s)",
        plan.len(),
        args.scenarios.len(),
        args.variants,
        args.rates,
        args.workers
    );

    // Capture the previous committed number before overwriting the file.
    // An explicitly re-measured baseline stands in when no committed
    // number exists, so `--prev-remeasured-sims-per-s` is never silently
    // dropped.
    let previous_sims_per_s = args
        .prev_sims_per_s
        .or_else(|| previous_streaming_sims_per_s(&args.out))
        .or(args.prev_remeasured_sims_per_s);

    // Four sweep backends, measured interleaved (one rep of each per
    // round) so machine noise lands on every side equally: the classic
    // trace-recording path, the per-rate streaming path, the
    // lane-batched lockstep path, and the seed×rate-batched path that
    // advances whole seed blocks through one lockstep loop.
    let per_rate_options = ExecOptions {
        batch_lanes: 1,
        ..ExecOptions::default()
    };
    let recorded_options = ExecOptions {
        record_traces: true,
        ..ExecOptions::default()
    };
    let batched_options = ExecOptions::default();
    let seed_blocks = plan.len().max(2);
    let seed_batched_options = ExecOptions {
        seed_blocks,
        ..ExecOptions::default()
    };
    let mut recorded_samples = Vec::new();
    let mut per_rate_samples = Vec::new();
    let mut batched_samples = Vec::new();
    let mut seed_batched_samples = Vec::new();
    let mut stores = None;
    for _ in 0..args.reps {
        let start = Instant::now();
        let recorded_store = run_sweep_with(&plan, args.workers, recorded_options);
        recorded_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let per_rate_store = run_sweep_with(&plan, args.workers, per_rate_options);
        per_rate_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let batched_store = run_sweep_with(&plan, args.workers, batched_options);
        batched_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let seed_batched_store = run_sweep_with(&plan, args.workers, seed_batched_options);
        seed_batched_samples.push(start.elapsed().as_secs_f64());
        assert_eq!(
            recorded_store.to_csv(),
            per_rate_store.to_csv(),
            "streaming and recorded sweeps must export identical results"
        );
        assert_eq!(
            per_rate_store.to_csv(),
            batched_store.to_csv(),
            "batched and per-rate sweeps must export identical results"
        );
        assert_eq!(
            per_rate_store.to_json(),
            batched_store.to_json(),
            "batched and per-rate sweeps must export identical JSON"
        );
        assert_eq!(
            per_rate_store.to_csv(),
            seed_batched_store.to_csv(),
            "seed-batched and per-rate sweeps must export identical results"
        );
        assert_eq!(
            per_rate_store.to_json(),
            seed_batched_store.to_json(),
            "seed-batched and per-rate sweeps must export identical JSON"
        );
        stores = Some((per_rate_store, batched_store));
    }
    let (streaming_store, _batched_store) = stores.expect("reps >= 1");
    let recorded_sweep = spread(&recorded_samples);
    let per_rate_sweep = spread(&per_rate_samples);
    let batched_sweep = spread(&batched_samples);
    let seed_batched_sweep = spread(&seed_batched_samples);
    let sims: u64 = streaming_store
        .results()
        .iter()
        .map(|r| match &r.outcome {
            JobOutcome::MinSafeFpr(m) => u64::from(m.sims_run),
            _ => 0,
        })
        .sum();
    let sweep_speedup = recorded_sweep.median / per_rate_sweep.median.max(1e-9);
    let batched_speedup = per_rate_sweep.median / batched_sweep.median.max(1e-9);
    println!(
        "msf sweep (median of {} reps): {} sims; recorded {:.2}s ({:.1} sims/s), per-rate streaming {:.2}s ({:.1} sims/s) -> {:.2}x",
        args.reps,
        sims,
        recorded_sweep.median,
        sims as f64 / recorded_sweep.median.max(1e-9),
        per_rate_sweep.median,
        sims as f64 / per_rate_sweep.median.max(1e-9),
        sweep_speedup,
    );
    println!(
        "batched msf sweep: {:.2}s ({:.1} sims/s) -> {:.2}x over the per-rate path (interleaved; spread {:.2}-{:.2}s vs {:.2}-{:.2}s)",
        batched_sweep.median,
        sims as f64 / batched_sweep.median.max(1e-9),
        batched_speedup,
        batched_sweep.min,
        batched_sweep.max,
        per_rate_sweep.min,
        per_rate_sweep.max,
    );
    let seed_batched_speedup = per_rate_sweep.median / seed_batched_sweep.median.max(1e-9);
    println!(
        "seed-batched msf sweep (seed_blocks {}): {:.2}s ({:.1} sims/s) -> {:.2}x over the per-rate path (spread {:.2}-{:.2}s)",
        seed_blocks,
        seed_batched_sweep.median,
        sims as f64 / seed_batched_sweep.median.max(1e-9),
        seed_batched_speedup,
        seed_batched_sweep.min,
        seed_batched_sweep.max,
    );

    // --- Phase 3: telemetry overhead (disabled vs enabled). ------------
    // The same batched streaming sweep with no registry installed and
    // with one recording, alternating within each rep so co-tenant noise
    // lands on both sides equally. The disabled side is the
    // zero-overhead-when-off contract: its median must sit within noise
    // of the plain batched sweep above (CI asserts the committed ratio).
    let mut telemetry_off_samples = Vec::new();
    let mut telemetry_on_samples = Vec::new();
    let mut telemetry_jobs = 0u64;
    for _ in 0..args.reps {
        let start = Instant::now();
        let off_store = run_sweep_with(&plan, args.workers, batched_options);
        telemetry_off_samples.push(start.elapsed().as_secs_f64());
        let registry = std::sync::Arc::new(zhuyi_telemetry::Registry::new());
        let start = Instant::now();
        let on_store = {
            let _guard = zhuyi_telemetry::install(&registry);
            run_sweep_with(&plan, args.workers, batched_options)
        };
        telemetry_on_samples.push(start.elapsed().as_secs_f64());
        telemetry_jobs =
            registry.snapshot().counters[zhuyi_telemetry::Counter::JobsExecuted.index()];
        assert_eq!(
            off_store.to_csv(),
            on_store.to_csv(),
            "telemetry must not change exported results"
        );
    }
    let telemetry_off = spread(&telemetry_off_samples);
    let telemetry_on = spread(&telemetry_on_samples);
    let telemetry_ratio = telemetry_on.median / telemetry_off.median.max(1e-9);
    assert_eq!(
        telemetry_jobs,
        plan.len() as u64,
        "the enabled side must have recorded every job"
    );
    println!(
        "telemetry overhead: off {:.2}s, on {:.2}s -> {:.3}x enabled/disabled (interleaved; spread {:.2}-{:.2}s vs {:.2}-{:.2}s)",
        telemetry_off.median,
        telemetry_on.median,
        telemetry_ratio,
        telemetry_on.min,
        telemetry_on.max,
        telemetry_off.min,
        telemetry_off.max,
    );

    // --- Phase 4: shard scaling (sims/sec per worker-process count). ---
    // One rep per point: each point spawns OS processes, so best-of-reps
    // buys little against that startup noise, and the equality assert
    // below is the correctness half regardless of timing.
    //
    // On a single-core machine every worker count collapses onto one CPU
    // and the points would only record scheduler noise dressed up as a
    // failed scaling experiment — skip the section (and say so in the
    // artifact) unless the caller explicitly insisted with --shards.
    let machine_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut shards_skipped = false;
    let mut shards = args.shards.clone();
    if machine_parallelism == 1 && !shards.is_empty() && !args.shards_explicit {
        println!(
            "shard scaling: skipped (machine_parallelism = 1; pass --shards explicitly to force)"
        );
        shards_skipped = true;
        shards.clear();
    }
    let mut shard_rows: Vec<(u32, f64, f64)> = Vec::new();
    if !shards.is_empty() {
        let worker_binary = match default_worker_binary() {
            Ok(path) => path,
            Err(message) => {
                eprintln!("error: shard scaling needs the worker binary: {message}");
                return ExitCode::from(2);
            }
        };
        for &workers in &shards {
            let config = DistConfig {
                spawn_workers: workers as usize,
                worker_binary: Some(worker_binary.clone()),
                ..DistConfig::default()
            };
            let start = Instant::now();
            let report = match run_distributed(&plan, &config) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("error: shard-scaling run with {workers} worker(s) failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let wall_s = start.elapsed().as_secs_f64();
            assert_eq!(
                report.store.to_csv(),
                streaming_store.to_csv(),
                "{workers}-worker distributed sweep must export identical results"
            );
            let sims_per_s = sims as f64 / wall_s.max(1e-9);
            println!(
                "shard scaling: {workers} worker process(es): {wall_s:.2}s ({sims_per_s:.1} sims/s)"
            );
            shard_rows.push((workers, wall_s, sims_per_s));
        }
    }

    // --- Write BENCH_sim.json (hand-rolled JSON; serde is a shim). -----
    let mut json = String::new();
    let scenario_names: Vec<String> = args
        .scenarios
        .iter()
        .map(|s| format!("\"{}\"", s.name()))
        .collect();
    let rate_cells: Vec<String> = args.rates.iter().map(|r| r.to_string()).collect();
    let _ = write!(
        json,
        "{{\n  \"schema\": \"zhuyi.bench_sim.v2\",\n  \"config\": {{\"scenarios\": [{}], \"variants\": {}, \"rates\": [{}], \"workers\": {}, \"reps\": {}, \"statistic\": \"median\"}},\n",
        scenario_names.join(", "),
        args.variants,
        rate_cells.join(", "),
        args.workers,
        args.reps,
    );
    let _ = writeln!(
        json,
        "  \"single_run\": {{\"ticks\": {}, \"recorded_s\": {:.6}, \"recorded_s_min\": {:.6}, \"recorded_s_max\": {:.6}, \"streaming_s\": {:.6}, \"streaming_s_min\": {:.6}, \"streaming_s_max\": {:.6}, \"recorded_ticks_per_s\": {:.1}, \"streaming_ticks_per_s\": {:.1}, \"speedup\": {:.3}}},",
        recorded_ticks,
        recorded_run.median,
        recorded_run.min,
        recorded_run.max,
        streaming_run.median,
        streaming_run.min,
        streaming_run.max,
        recorded_ticks as f64 / recorded_run.median.max(1e-9),
        streaming_ticks as f64 / streaming_run.median.max(1e-9),
        recorded_run.median / streaming_run.median.max(1e-9),
    );
    let _ = writeln!(
        json,
        "  \"msf_sweep\": {{\"jobs\": {}, \"sims\": {}, \"recorded_s\": {:.6}, \"recorded_s_min\": {:.6}, \"recorded_s_max\": {:.6}, \"streaming_s\": {:.6}, \"streaming_s_min\": {:.6}, \"streaming_s_max\": {:.6}, \"recorded_sims_per_s\": {:.2}, \"streaming_sims_per_s\": {:.2}, \"speedup\": {:.3}}},",
        plan.len(),
        sims,
        recorded_sweep.median,
        recorded_sweep.min,
        recorded_sweep.max,
        per_rate_sweep.median,
        per_rate_sweep.min,
        per_rate_sweep.max,
        sims as f64 / recorded_sweep.median.max(1e-9),
        sims as f64 / per_rate_sweep.median.max(1e-9),
        sweep_speedup,
    );
    let _ = writeln!(
        json,
        "  \"batched_msf_sweep\": {{\"batch_lanes\": {}, \"interleaved_with_per_rate\": true, \"sims\": {}, \"batched_s\": {:.6}, \"batched_s_min\": {:.6}, \"batched_s_max\": {:.6}, \"streaming_sims_per_s\": {:.2}, \"per_rate_sims_per_s\": {:.2}, \"speedup_vs_per_rate\": {:.3}, \"exports_identical\": true}},",
        args.rates.len(),
        sims,
        batched_sweep.median,
        batched_sweep.min,
        batched_sweep.max,
        sims as f64 / batched_sweep.median.max(1e-9),
        sims as f64 / per_rate_sweep.median.max(1e-9),
        batched_speedup,
    );
    let _ = writeln!(
        json,
        "  \"telemetry_overhead\": {{\"jobs_recorded\": {}, \"off_s\": {:.6}, \"off_s_min\": {:.6}, \"off_s_max\": {:.6}, \"on_s\": {:.6}, \"on_s_min\": {:.6}, \"on_s_max\": {:.6}, \"on_vs_off\": {:.3}, \"off_vs_plain_batched\": {:.3}, \"exports_identical\": true}},",
        telemetry_jobs,
        telemetry_off.median,
        telemetry_off.min,
        telemetry_off.max,
        telemetry_on.median,
        telemetry_on.min,
        telemetry_on.max,
        telemetry_ratio,
        telemetry_off.median / batched_sweep.median.max(1e-9),
    );
    let _ = write!(
        json,
        "  \"seed_batched\": {{\"seed_blocks\": {}, \"batch_lanes\": {}, \"sims\": {}, \"seed_batched_s\": {:.6}, \"seed_batched_s_min\": {:.6}, \"seed_batched_s_max\": {:.6}, \"sims_per_s\": {:.2}, \"speedup_vs_per_rate\": {:.3}, \"exports_identical\": true",
        seed_blocks,
        args.rates.len(),
        sims,
        seed_batched_sweep.median,
        seed_batched_sweep.min,
        seed_batched_sweep.max,
        sims as f64 / seed_batched_sweep.median.max(1e-9),
        seed_batched_speedup,
    );
    if let Some(previous) = previous_sims_per_s {
        let current = sims as f64 / seed_batched_sweep.median.max(1e-9);
        let _ = write!(
            json,
            ", \"vs_previous\": {{\"previous_streaming_sims_per_s\": {:.2}, \"sims_per_s\": {:.2}, \"ratio\": {:.3}}}",
            previous,
            current,
            current / previous.max(1e-9),
        );
    }
    let _ = write!(json, "}}");
    if shards_skipped {
        let _ = write!(
            json,
            ",\n  \"shard_scaling\": {{\"machine_parallelism\": {machine_parallelism}, \"skipped\": true, \"reason\": \"single-core machine: worker counts collapse onto one CPU, so the points would measure scheduler noise, not scaling\"}}",
        );
    }
    if !shard_rows.is_empty() {
        let base_sims_per_s = shard_rows[0].2;
        let cells: Vec<String> = shard_rows
            .iter()
            .map(|&(workers, wall_s, sims_per_s)| {
                format!(
                    "\n    {{\"workers\": {workers}, \"wall_s\": {wall_s:.6}, \"sims_per_s\": {sims_per_s:.2}, \"scaling_vs_smallest\": {:.3}}}",
                    sims_per_s / base_sims_per_s.max(1e-9),
                )
            })
            .collect();
        // machine_parallelism is the reading key: on a multi-core box
        // the points show real scaling; single-core machines skip this
        // section entirely (see above) unless --shards insists.
        let _ = write!(
            json,
            ",\n  \"shard_scaling\": {{\"machine_parallelism\": {machine_parallelism}, \"skipped\": false, \"points\": [{}\n  ]}}",
            cells.join(","),
        );
    }
    if let Some(previous) = previous_sims_per_s {
        let current = sims as f64 / per_rate_sweep.median.max(1e-9);
        let _ = write!(
            json,
            ",\n  \"vs_previous\": {{\"previous_streaming_sims_per_s\": {:.2}, \"streaming_sims_per_s\": {:.2}, \"speedup\": {:.3}",
            previous,
            current,
            current / previous.max(1e-9),
        );
        println!(
            "vs previous: {:.1} -> {:.1} streaming sims/s ({:.2}x)",
            previous,
            current,
            current / previous.max(1e-9),
        );
        if let Some(remeasured) = args.prev_remeasured_sims_per_s {
            // The previous commit's binary re-run on this machine at bench
            // time — the like-for-like ratio when the committed number was
            // recorded under different machine load.
            let _ = write!(
                json,
                ", \"previous_remeasured_sims_per_s\": {:.2}, \"speedup_same_machine\": {:.3}",
                remeasured,
                current / remeasured.max(1e-9),
            );
            println!(
                "vs previous (re-measured on this machine): {:.1} -> {:.1} sims/s ({:.2}x)",
                remeasured,
                current,
                current / remeasured.max(1e-9),
            );
        }
        json.push('}');
    }
    if let Some(baseline_s) = args.baseline_s {
        let _ = write!(
            json,
            ",\n  \"pre_streaming_baseline\": {{\"method\": \"identical msf sweep on the pre-streaming engine (previous commit's fleet_sweep --mode msf), measured externally on the same machine\", \"wall_s\": {:.6}, \"streaming_speedup\": {:.3}}}",
            baseline_s,
            baseline_s / per_rate_sweep.median.max(1e-9),
        );
        println!(
            "pre-streaming baseline: {:.2}s -> streaming speedup {:.2}x",
            baseline_s,
            baseline_s / per_rate_sweep.median.max(1e-9),
        );
    }
    json.push_str("\n}\n");
    let path = zhuyi_bench::write_results(&args.out, &json);
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}
