//! `fleet_sweep` — run a fleet-scale scenario sweep from the command
//! line, on this process's thread pool or sharded across worker
//! processes/hosts.
//!
//! The paper's pre-deployment workflow (§3.1) at corpus scale: expand the
//! nine Table-1 scenarios into jittered variants, fan the resulting jobs
//! across workers, and aggregate/export the merged results.
//!
//! ```text
//! USAGE:
//!   fleet_sweep [--mode msf|probe|percam|analyze] [--scenarios all|0,1,5]
//!               [--scenario-dir DIR] [--variants N] [--workers N] [--rates 1,2,...,30]
//!               [--fpr F] [--plans all|0,2] [--predictor oracle|cv|ca]
//!               [--stride N] [--csv NAME] [--json NAME] [--traces]
//!               [--record-traces] [--batch-lanes N] [--seed-blocks N] [--baseline]
//!               [--dist] [--listen ADDR] [--checkpoint PATH] [--batch N]
//!               [--connect ADDR] [--chaos-seed N] [--chaos-profile NAME]
//!               [--max-job-failures K] [--verify-fraction F]
//!               [--fail-after N] [--telemetry] [--telemetry-out NAME]
//!               [--metrics-listen ADDR]
//!               [--daemon --listen ADDR --journal PATH [--max-queue N] [--lease-secs N]]
//!               [--submit ADDR [--drain] [--retry-max N] [--retry-base-ms N]]
//!               [--help]
//! ```
//!
//! Defaults reproduce Table 1 fleet-style: `--mode msf --scenarios all
//! --variants 10` over the paper's rate grid, on all available cores.
//!
//! **Distributed modes.** `--dist` shards the sweep across `--workers N`
//! spawned `fleet_shard` OS processes (plus any external workers when
//! `--listen HOST:PORT` is given); exports stay byte-identical to the
//! single-process run. `--checkpoint PATH` makes the run resumable and
//! `--batch N` pins the shard size. `--connect HOST:PORT` turns this
//! invocation into a *worker* that joins a coordinator elsewhere (the
//! multi-host story: run `fleet_sweep --dist --listen` on one box and
//! `fleet_sweep --connect` on the others).
//!
//! **Chaos testing.** `--chaos-seed N [--chaos-profile NAME]` makes each
//! spawned worker inject a deterministic fault stream (drops, delays,
//! duplicates, truncations, bit-flips) into its uplink — the sweep must
//! still complete with byte-identical exports. `--max-job-failures K`
//! sets the quarantine strike limit, `--verify-fraction F` samples jobs
//! for duplicate-execution cross-checking, and `--fail-after N` crashes
//! the first spawned worker after N results. Quarantined jobs are
//! reported and exported as a sibling `*.quarantine.csv/json` artifact.
//!
//! **Sweep service.** `--daemon --listen ADDR --journal PATH` runs the
//! persistent coordinator: plans arrive from `--submit` clients, every
//! admission and result is journaled (a `kill -9` resumes from the
//! journal on restart), admission is bounded by `--max-queue` with
//! `Busy` load-shedding, and `--lease-secs` bounds how long orphaned
//! plans are kept. `--submit ADDR` sends this invocation's plan to a
//! daemon instead of running it, retrying with exponential backoff
//! (`--retry-max`, `--retry-base-ms`), then polls, fetches, and exports
//! exactly what a local run would have written. `--submit ADDR --drain`
//! asks the daemon to finish everything admitted and exit.
//!
//! **Telemetry.** `--telemetry` collects per-phase tick profiles,
//! per-job wall times, cert-decline reason counters, and (in dist mode)
//! wire/runtime metrics folded from every worker — strictly out-of-band,
//! exports stay byte-identical — and writes a sibling
//! `NAME.telemetry.json` (override with `--telemetry-out NAME`).
//! `--metrics-listen ADDR` (dist only) additionally serves a live
//! Prometheus-style plaintext exposition from the coordinator.

use av_scenarios::catalog::{PerCameraPlan, ScenarioId, PAPER_RATE_GRID};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use zhuyi_distd::{
    cli as dcli, client, run_daemon, run_distributed, run_via_daemon, run_worker, ChaosProfile,
    ChaosSpec, ClientConfig, DaemonConfig, DistConfig, QuarantineManifest, WorkerOptions,
};
use zhuyi_fleet::{cli, pool, run_sweep_with, ExecOptions, PredictorChoice, SweepPlan};
use zhuyi_registry::{Registry, ScenarioSource};

#[derive(Debug)]
struct Args {
    mode: Mode,
    scenarios: Vec<ScenarioSource>,
    scenario_dir: Option<PathBuf>,
    variants: u64,
    workers: usize,
    rates: Vec<u32>,
    fpr: f64,
    plans: Vec<PerCameraPlan>,
    predictor: PredictorChoice,
    stride: usize,
    csv: Option<String>,
    json: Option<String>,
    traces: bool,
    record_traces: bool,
    batch_lanes: usize,
    seed_blocks: usize,
    baseline: bool,
    dist: bool,
    listen: Option<String>,
    connect: Option<String>,
    checkpoint: Option<PathBuf>,
    batch: Option<usize>,
    chaos_seed: Option<u64>,
    chaos_profile: Option<&'static ChaosProfile>,
    max_job_failures: Option<usize>,
    verify_fraction: Option<f64>,
    fail_after: Option<u32>,
    telemetry: bool,
    telemetry_out: Option<String>,
    metrics_listen: Option<String>,
    daemon: bool,
    journal: Option<PathBuf>,
    submit: Option<String>,
    drain: bool,
    max_queue: Option<usize>,
    lease_secs: Option<u64>,
    retry_max: Option<u32>,
    retry_base_ms: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Msf,
    Probe,
    PerCamera,
    Analyze,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Msf => "msf",
            Mode::Probe => "probe",
            Mode::PerCamera => "percam",
            Mode::Analyze => "analyze",
        }
    }
}

impl Default for Args {
    fn default() -> Self {
        Self {
            mode: Mode::Msf,
            scenarios: ScenarioId::ALL.iter().map(|&id| id.into()).collect(),
            scenario_dir: None,
            variants: 10,
            workers: pool::default_workers(),
            rates: PAPER_RATE_GRID.to_vec(),
            fpr: 30.0,
            plans: av_scenarios::catalog::PER_CAMERA_PLANS.to_vec(),
            predictor: PredictorChoice::Oracle,
            stride: 20,
            csv: None,
            json: None,
            traces: false,
            record_traces: false,
            batch_lanes: 0,
            seed_blocks: 0,
            baseline: false,
            dist: false,
            listen: None,
            connect: None,
            checkpoint: None,
            batch: None,
            chaos_seed: None,
            chaos_profile: None,
            max_job_failures: None,
            verify_fraction: None,
            fail_after: None,
            telemetry: false,
            telemetry_out: None,
            metrics_listen: None,
            daemon: false,
            journal: None,
            submit: None,
            drain: false,
            max_queue: None,
            lease_secs: None,
            retry_max: None,
            retry_base_ms: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut seen: Vec<String> = Vec::new();
    // `--scenarios` means different things with and without
    // `--scenario-dir` (Table-1 indexes vs registry name/tag filter), so
    // the raw spec is kept and resolved after the flag loop.
    let mut scenarios_spec = String::from("all");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        seen.push(flag.clone());
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "msf" => Mode::Msf,
                    "probe" => Mode::Probe,
                    "percam" => Mode::PerCamera,
                    "analyze" => Mode::Analyze,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--scenarios" => scenarios_spec = value("--scenarios")?,
            "--scenario-dir" => args.scenario_dir = Some(PathBuf::from(value("--scenario-dir")?)),
            "--variants" => {
                args.variants = value("--variants")?
                    .parse()
                    .map_err(|_| "bad --variants".to_string())?
            }
            "--workers" => {
                let raw = value("--workers")?;
                args.workers = if raw.trim() == "0" {
                    0
                } else {
                    dcli::parse_workers(&raw)?
                };
            }
            "--rates" => args.rates = cli::parse_rates(&value("--rates")?)?,
            "--fpr" => {
                args.fpr = value("--fpr")?
                    .parse()
                    .map_err(|_| "bad --fpr".to_string())?
            }
            "--plans" => args.plans = cli::parse_per_camera_plans(&value("--plans")?)?,
            "--predictor" => {
                args.predictor = match value("--predictor")?.as_str() {
                    "oracle" => PredictorChoice::Oracle,
                    "cv" => PredictorChoice::ConstantVelocity,
                    "ca" => PredictorChoice::ConstantAcceleration,
                    other => return Err(format!("unknown predictor {other:?}")),
                }
            }
            "--stride" => {
                args.stride = value("--stride")?
                    .parse()
                    .map_err(|_| "bad --stride".to_string())?
            }
            "--csv" => args.csv = Some(value("--csv")?),
            "--json" => args.json = Some(value("--json")?),
            "--traces" => args.traces = true,
            "--record-traces" => args.record_traces = true,
            "--batch-lanes" => {
                args.batch_lanes = dcli::parse_batch_lanes(&value("--batch-lanes")?)?
            }
            "--seed-blocks" => {
                args.seed_blocks = dcli::parse_seed_blocks(&value("--seed-blocks")?)?
            }
            "--baseline" => args.baseline = true,
            "--dist" => args.dist = true,
            "--listen" => args.listen = Some(dcli::parse_addr("--listen", &value("--listen")?)?),
            "--connect" => {
                args.connect = Some(dcli::parse_addr("--connect", &value("--connect")?)?)
            }
            "--checkpoint" => {
                args.checkpoint = Some(dcli::parse_checkpoint(&value("--checkpoint")?)?)
            }
            "--batch" => args.batch = Some(dcli::parse_batch(&value("--batch")?)?),
            "--chaos-seed" => {
                args.chaos_seed = Some(dcli::parse_chaos_seed(&value("--chaos-seed")?)?)
            }
            "--chaos-profile" => {
                args.chaos_profile = Some(dcli::parse_chaos_profile(&value("--chaos-profile")?)?)
            }
            "--max-job-failures" => {
                args.max_job_failures =
                    Some(dcli::parse_max_job_failures(&value("--max-job-failures")?)?)
            }
            "--verify-fraction" => {
                args.verify_fraction =
                    Some(dcli::parse_verify_fraction(&value("--verify-fraction")?)?)
            }
            "--fail-after" => {
                args.fail_after = Some(dcli::parse_fail_after(&value("--fail-after")?)?)
            }
            "--daemon" => args.daemon = true,
            "--journal" => args.journal = Some(dcli::parse_journal(&value("--journal")?)?),
            "--submit" => args.submit = Some(dcli::parse_addr("--submit", &value("--submit")?)?),
            "--drain" => args.drain = true,
            "--max-queue" => args.max_queue = Some(dcli::parse_max_queue(&value("--max-queue")?)?),
            "--lease-secs" => {
                args.lease_secs = Some(dcli::parse_lease_secs(&value("--lease-secs")?)?)
            }
            "--retry-max" => args.retry_max = Some(dcli::parse_retry_max(&value("--retry-max")?)?),
            "--retry-base-ms" => {
                args.retry_base_ms = Some(dcli::parse_retry_base_ms(&value("--retry-base-ms")?)?)
            }
            "--telemetry" => args.telemetry = true,
            "--telemetry-out" => args.telemetry_out = Some(value("--telemetry-out")?),
            "--metrics-listen" => {
                args.metrics_listen = Some(dcli::parse_addr(
                    "--metrics-listen",
                    &value("--metrics-listen")?,
                )?)
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.workers == 0 && !(args.listen.is_some() && (args.dist || args.daemon)) {
        return Err(
            "--workers 0 is only valid with --dist --listen or --daemon --listen \
             (external workers only)"
                .to_string(),
        );
    }
    if args.variants == 0 {
        return Err("--variants must be >= 1".to_string());
    }
    if !(args.fpr.is_finite() && args.fpr > 0.0) {
        return Err("--fpr must be positive and finite".to_string());
    }
    dcli::validate_dist_flags(&dcli::DistFlags {
        dist: args.dist,
        connect: args.connect.clone(),
        listen: args.listen.clone(),
        checkpoint: args.checkpoint.clone(),
        batch: args.batch,
        chaos_seed: args.chaos_seed.is_some(),
        chaos_profile: args.chaos_profile.is_some(),
        max_job_failures: args.max_job_failures.is_some(),
        verify_fraction: args.verify_fraction.is_some(),
        fail_after: args.fail_after.is_some(),
        telemetry: args.telemetry,
        telemetry_out: args.telemetry_out.is_some(),
        metrics_listen: args.metrics_listen.is_some(),
        export_flags: ["--csv", "--json", "--traces", "--baseline"]
            .iter()
            .filter(|f| seen.iter().any(|s| s == *f))
            .map(ToString::to_string)
            .collect(),
        daemon: args.daemon,
        journal: args.journal.clone(),
        submit: args.submit.clone(),
        drain: args.drain,
        max_queue: args.max_queue.is_some(),
        lease_secs: args.lease_secs.is_some(),
        retry_max: args.retry_max.is_some(),
        retry_base_ms: args.retry_base_ms.is_some(),
    })?;
    if args.daemon {
        // The daemon runs whatever plans clients submit; its own
        // invocation carries no plan, so plan-shaping flags would be
        // silently ignored — reject them loudly (--workers stays: it
        // sizes the daemon's spawned fleet).
        let plan_flags = [
            "--mode",
            "--scenarios",
            "--scenario-dir",
            "--variants",
            "--rates",
            "--fpr",
            "--plans",
            "--predictor",
            "--stride",
            "--record-traces",
            "--batch-lanes",
            "--seed-blocks",
        ];
        if let Some(flag) = seen.iter().find(|f| plan_flags.contains(&f.as_str())) {
            return Err(format!(
                "{flag} does not apply to --daemon (submitting clients own the plan)"
            ));
        }
    }
    if args.connect.is_some() {
        // A worker has no plan of its own: every plan-shaping flag would
        // be silently ignored, so reject them loudly instead.
        let plan_flags = [
            "--mode",
            "--scenarios",
            "--scenario-dir",
            "--variants",
            "--workers",
            "--rates",
            "--fpr",
            "--plans",
            "--predictor",
            "--stride",
            "--record-traces",
            "--batch-lanes",
            "--seed-blocks",
        ];
        if let Some(flag) = seen.iter().find(|f| plan_flags.contains(&f.as_str())) {
            return Err(format!(
                "{flag} does not apply to a --connect worker (the coordinator owns the plan)"
            ));
        }
    }
    // Reject flags the selected mode would silently ignore — a dropped
    // `--rates` or `--fpr` quietly changes what safety question was asked.
    if args.connect.is_none() && args.record_traces {
        // Trace-recording MSF probes always take the per-rate classic
        // path; a --batch-lanes or --seed-blocks alongside would be
        // silently ignored.
        for flag in ["--batch-lanes", "--seed-blocks"] {
            if seen.iter().any(|f| f == flag) {
                return Err(format!("{flag} does not apply with --record-traces"));
            }
        }
    }
    if args.connect.is_none() {
        let irrelevant: &[&str] = match args.mode {
            Mode::Msf => &["--fpr", "--plans", "--predictor", "--stride", "--traces"],
            Mode::Probe => &[
                "--rates",
                "--plans",
                "--predictor",
                "--stride",
                "--batch-lanes",
                "--seed-blocks",
            ],
            Mode::PerCamera => &[
                "--rates",
                "--fpr",
                "--predictor",
                "--stride",
                "--batch-lanes",
                "--seed-blocks",
            ],
            // Analyze jobs always record (the estimator consumes the
            // trace), so --record-traces would be a silent no-op there.
            Mode::Analyze => &[
                "--rates",
                "--plans",
                "--traces",
                "--record-traces",
                "--batch-lanes",
                "--seed-blocks",
            ],
        };
        if let Some(flag) = seen.iter().find(|f| irrelevant.contains(&f.as_str())) {
            return Err(format!(
                "{flag} does not apply to --mode {}",
                args.mode.name()
            ));
        }
    }
    args.scenarios = match &args.scenario_dir {
        Some(dir) => {
            let registry = Registry::load_dir(dir).map_err(|e| e.to_string())?;
            registry
                .filter(&scenarios_spec)
                .map_err(|e| e.to_string())?
        }
        None => cli::parse_scenarios(&scenarios_spec)?
            .into_iter()
            .map(ScenarioSource::from)
            .collect(),
    };
    Ok(args)
}

/// Builds the daemon-client configuration shared by `--submit` and
/// `--drain`: retry/backoff knobs from the CLI, a per-process client
/// name (each invocation gets its own fairness lane), and optional chaos
/// on the submit link mirroring the `--dist` chaos flags.
fn client_config(args: &Args) -> ClientConfig {
    ClientConfig {
        addr: args
            .submit
            .clone()
            .expect("validated: client operations require --submit"),
        name: format!("fleet_sweep-{}", std::process::id()),
        retry_max: args.retry_max.unwrap_or(8),
        retry_base: Duration::from_millis(args.retry_base_ms.unwrap_or(100)),
        seed: args.chaos_seed.unwrap_or(0),
        chaos: args.chaos_seed.map(|seed| ChaosSpec {
            seed,
            profile: args
                .chaos_profile
                .unwrap_or_else(|| dcli::parse_chaos_profile("mild").expect("built-in")),
        }),
        ..ClientConfig::default()
    }
}

/// `msf.csv` → `msf.quarantine.csv`: the sibling artifact carrying the
/// quarantine manifest next to a main export (always written in dist
/// mode, header-only on a clean pass so CI can assert emptiness).
fn quarantine_name(name: &str) -> String {
    match name.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.quarantine.{ext}"),
        None => format!("{name}.quarantine"),
    }
}

/// `msf.json`/`msf.csv` → `msf.telemetry.json`: the sibling telemetry
/// artifact; always JSON regardless of the main export's format.
fn telemetry_name(name: &str) -> String {
    match name.rsplit_once('.') {
        Some((stem, _)) => format!("{stem}.telemetry.json"),
        None => format!("{name}.telemetry.json"),
    }
}

fn usage() {
    eprintln!(
        "fleet_sweep — parallel fleet-scale scenario sweeps (threads or processes)\n\n\
         USAGE:\n  fleet_sweep [--mode msf|probe|percam|analyze] [--scenarios all|0,1,5]\n\
         \x20             [--scenario-dir DIR] [--variants N] [--workers N] [--rates 1,2,...,30]\n\
         \x20             [--fpr F] [--plans all|0,2] [--predictor oracle|cv|ca]\n\
         \x20             [--stride N] [--csv NAME] [--json NAME] [--traces]\n\
         \x20             [--record-traces] [--batch-lanes N] [--seed-blocks N] [--baseline]\n\
         \x20             [--dist] [--listen ADDR] [--checkpoint PATH] [--batch N]\n\
         \x20             [--connect ADDR] [--chaos-seed N] [--chaos-profile NAME]\n\
         \x20             [--max-job-failures K] [--verify-fraction F] [--fail-after N]\n\
         \x20             [--telemetry] [--telemetry-out NAME] [--metrics-listen ADDR]\n\
         \x20             [--daemon --listen ADDR --journal PATH [--max-queue N] [--lease-secs N]]\n\
         \x20             [--submit ADDR [--drain] [--retry-max N] [--retry-base-ms N]]\n\n\
         MODES:\n\
         \x20 msf      search each instance's minimum safe rate over --rates (default);\n\
         \x20          --batch-lanes N sets the lockstep lanes per pass (0 = auto = the\n\
         \x20          whole grid, 1 = the per-rate reference search; identical exports),\n\
         \x20          --seed-blocks N groups up to N consecutive same-grid jobs into\n\
         \x20          one seed-batched lockstep block (0/1 = per-job; identical exports)\n\
         \x20 probe    run each instance closed-loop at --fpr and record collisions\n\
         \x20 percam   probe each instance against the heterogeneous per-camera rate\n\
         \x20          plans selected by --plans (catalog presets, see below)\n\
         \x20 analyze  run at --fpr, then Zhuyi-analyze the trace with --predictor\n\n\
         DISTRIBUTION:\n\
         \x20 --dist            shard across --workers N spawned fleet_shard processes\n\
         \x20 --listen ADDR     (with --dist) also accept external workers on ADDR\n\
         \x20 --checkpoint P    append completed jobs to P; resume P if it exists\n\
         \x20 --batch N         jobs per shard (default: pending/(workers*4))\n\
         \x20 --connect ADDR    be a worker for the coordinator at ADDR instead\n\n\
         CHAOS / FAULT TOLERANCE (with --dist):\n\
         \x20 --chaos-seed N        deterministic fault injection on worker uplinks\n\
         \x20 --chaos-profile NAME  mild (default) | storm | drops | corrupt\n\
         \x20 --max-job-failures K  strikes before a job is quarantined (default 3)\n\
         \x20 --verify-fraction F   re-execute this fraction of jobs on a second\n\
         \x20                       worker and cross-check results bit-for-bit\n\
         \x20 --fail-after N        crash the first spawned worker after N results\n\
         \x20 Quarantined jobs export as sibling NAME.quarantine.csv/json artifacts\n\
         \x20 (header-only when nothing was quarantined).\n\n\
         SWEEP SERVICE (persistent daemon + submitting clients):\n\
         \x20 --daemon          serve submitted plans until drained; requires --listen\n\
         \x20                   (the service address) and --journal (durability)\n\
         \x20 --journal PATH    write-ahead log: every admission/result/completion is\n\
         \x20                   flushed per record; a restarted daemon replays it and\n\
         \x20                   resumes queued and in-flight sweeps (kill -9 safe)\n\
         \x20 --max-queue N     admission bound; beyond it submits get Busy (default 8)\n\
         \x20 --lease-secs N    plan lease: queued plans whose client vanishes this\n\
         \x20                   long are cancelled, unfetched results released (300)\n\
         \x20 --submit ADDR     send this plan to the daemon at ADDR, poll, fetch, and\n\
         \x20                   export locally; submission is fingerprint-deduped, so\n\
         \x20                   blind retries are exactly-once\n\
         \x20 --drain           (with --submit) ask the daemon to finish and exit\n\
         \x20 --retry-max N     client retry budget per operation (default 8)\n\
         \x20 --retry-base-ms N first backoff delay; doubles per retry, jittered (100)\n\
         \x20 --chaos-seed/--chaos-profile with --submit perturb the submit link\n\n\
         TELEMETRY (strictly out-of-band; exports stay byte-identical):\n\
         \x20 --telemetry           collect tick-phase profiles, job wall times, cert\n\
         \x20                       decline reasons, and fleet runtime metrics; writes\n\
         \x20                       a sibling NAME.telemetry.json next to --csv/--json\n\
         \x20 --telemetry-out NAME  telemetry artifact name (requires --telemetry)\n\
         \x20 --metrics-listen ADDR serve live Prometheus-style metrics from the\n\
         \x20                       coordinator for the run's duration (requires --dist)\n\n\
         SCENARIO REGISTRY:\n\
         \x20 --scenario-dir DIR loads every *.scn definition in DIR instead of the\n\
         \x20 built-in catalog; --scenarios then filters by name or tag with * globs\n\
         \x20 (e.g. --scenarios 'Cut-*,following'), and 'all' keeps every definition.\n\n\
         Without --scenario-dir, scenario indexes follow Table-1 order\n\
         (0 = Cut-out ... 8 = Front & right 3).\n\
         Per-camera plan indexes follow catalog order (0 = front-heavy, 1 = side-heavy,\n\
         2 = economy, 3 = rear-heavy). --csv/--json write into results/ via the bench\n\
         harness. Distributed exports are byte-identical to single-process exports\n\
         (worker count, shard shape, crashes and resumes never change the output)."
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            usage();
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    // Daemon mode: serve submitted plans until drained; clients own
    // plans and exports.
    if args.daemon {
        let config = DaemonConfig {
            listen: args
                .listen
                .clone()
                .expect("validated: --daemon requires --listen"),
            journal: args
                .journal
                .clone()
                .expect("validated: --daemon requires --journal"),
            spawn_workers: args.workers,
            worker_binary: None,
            max_queue: args.max_queue.unwrap_or(8),
            lease: Duration::from_secs(args.lease_secs.unwrap_or(300)),
            batch_size: args.batch,
            heartbeat_timeout: Duration::from_secs(30),
            max_job_failures: args.max_job_failures.unwrap_or(3),
            telemetry: args.telemetry,
        };
        println!(
            "fleet_sweep: sweep daemon on {} (journal {}, {} spawned workers, queue {})",
            config.listen,
            config.journal.display(),
            config.spawn_workers,
            config.max_queue,
        );
        return match run_daemon(&config) {
            Ok(report) => {
                let s = report.stats;
                println!(
                    "daemon drained: {} plans admitted ({} deduped, {} shed), {} completed, \
                     {} cancelled, {} replayed from journal ({} journaled results resumed)",
                    s.plans_admitted,
                    s.submits_deduped,
                    s.submits_shed,
                    s.plans_completed,
                    s.plans_cancelled,
                    s.plans_replayed,
                    s.resumed_results,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Drain: a client operation that needs no plan.
    if args.drain {
        let config = client_config(&args);
        return match client::drain(&config) {
            Ok(queued) => {
                println!("daemon draining: {queued} plan(s) left to finish before it exits");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Worker mode: join a coordinator elsewhere; it owns plan and exports.
    if let Some(addr) = &args.connect {
        println!("fleet_sweep: joining coordinator at {addr} as a worker");
        return match run_worker(&WorkerOptions::new(addr.clone())) {
            Ok(executed) => {
                println!("worker done: executed {executed} jobs");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut builder = SweepPlan::builder()
        .sources(args.scenarios.iter().cloned())
        .jittered_variants(args.variants);
    builder = match args.mode {
        Mode::Msf => builder.min_safe_fpr(args.rates.clone()),
        Mode::Probe => builder.probe(args.fpr, args.traces),
        Mode::PerCamera => {
            builder.probe_per_camera_plans(args.plans.iter().map(|p| p.rates.to_vec()), args.traces)
        }
        Mode::Analyze => builder.analyze(args.fpr, args.predictor, args.stride),
    };
    let plan = builder.build();

    println!(
        "fleet_sweep: {} jobs ({} scenarios x {} variants), {} {}",
        plan.len(),
        args.scenarios.len(),
        args.variants,
        args.workers,
        if args.dist {
            "worker processes"
        } else {
            "worker threads"
        }
    );

    let options = ExecOptions {
        record_traces: args.record_traces,
        batch_lanes: args.batch_lanes,
        seed_blocks: args.seed_blocks,
    };
    let start = Instant::now();
    let mut quarantine: Option<QuarantineManifest> = None;
    let telemetry_snapshot: Option<zhuyi_telemetry::Snapshot>;
    let store = if let Some(addr) = &args.submit {
        // Client mode: the daemon executes; this process submits, waits,
        // fetches, and exports. The merged store is byte-identical to a
        // local run of the same plan.
        telemetry_snapshot = None;
        println!("fleet_sweep: submitting plan to the sweep daemon at {addr}");
        match run_via_daemon(&client_config(&args), &plan, options) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if args.dist {
        let config = DistConfig {
            spawn_workers: args.workers,
            listen: args.listen.clone(),
            checkpoint: args.checkpoint.clone(),
            batch_size: args.batch,
            options,
            chaos: args.chaos_seed.map(|seed| ChaosSpec {
                seed,
                profile: args
                    .chaos_profile
                    .unwrap_or_else(|| dcli::parse_chaos_profile("mild").expect("built-in")),
            }),
            max_job_failures: args.max_job_failures.unwrap_or(3),
            verify_fraction: args.verify_fraction.unwrap_or(0.0),
            worker_extra_args: args
                .fail_after
                .map(|n| vec![vec!["--fail-after".to_string(), n.to_string()]])
                .unwrap_or_default(),
            telemetry: args.telemetry,
            metrics_listen: args.metrics_listen.clone(),
            // Telemetry runs own a flight-dump directory so panic,
            // deadline, and quarantine post-mortems land next to the
            // other artifacts.
            flight_dir: args
                .telemetry
                .then(|| zhuyi_bench::results_dir().join("flight")),
            ..DistConfig::default()
        };
        let report = match run_distributed(&plan, &config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        telemetry_snapshot = report.telemetry.filter(|_| args.telemetry);
        let s = report.stats;
        println!(
            "distributed: {} workers ({} lost, {} respawned), {} shards ({} reassigned, \
             {} jobs stolen, {} duplicate results), {} jobs resumed from checkpoint",
            s.workers_connected,
            s.workers_lost,
            s.workers_respawned,
            s.batches_assigned,
            s.batches_reassigned,
            s.jobs_stolen,
            s.duplicate_results,
            s.resumed_jobs,
        );
        if s.job_failures > 0 || s.jobs_quarantined > 0 || s.verify_jobs > 0 {
            println!(
                "fault tolerance: {} job failures ({} deadline strikes), {} quarantined, \
                 {} cross-checked jobs ({} confirmed), {} respawn failures",
                s.job_failures,
                s.deadline_strikes,
                s.jobs_quarantined,
                s.verify_jobs,
                s.verify_confirmed,
                s.respawn_failures,
            );
        }
        quarantine = Some(report.quarantine);
        report.store
    } else {
        // Local telemetry: install a registry for the sweep's duration;
        // the pool gives each worker thread a shard registry and folds
        // them back deterministically. Strictly out-of-band — the store
        // (and every export) is byte-identical with or without it.
        let registry = args
            .telemetry
            .then(|| std::sync::Arc::new(zhuyi_telemetry::Registry::new()));
        let guard = registry.as_ref().map(zhuyi_telemetry::install);
        let store = run_sweep_with(&plan, args.workers, options);
        drop(guard);
        telemetry_snapshot = registry.map(|reg| reg.snapshot());
        store
    };
    let elapsed = start.elapsed();
    println!(
        "completed {} jobs in {:.2}s ({:.1} jobs/s)\n",
        store.len(),
        elapsed.as_secs_f64(),
        store.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    if args.baseline {
        let start = Instant::now();
        let sequential = run_sweep_with(&plan, 1, options);
        let baseline = start.elapsed();
        assert_eq!(
            sequential.to_csv(),
            store.to_csv(),
            "parallel and sequential sweeps must merge identically"
        );
        println!(
            "single-thread baseline: {:.2}s -> speedup {:.2}x on {} workers (identical output)\n",
            baseline.as_secs_f64(),
            baseline.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            args.workers
        );
    }

    if let Some(manifest) = quarantine.as_ref().filter(|m| !m.is_empty()) {
        eprintln!(
            "warning: {} job(s) quarantined after repeated failures; the exports below \
             cover completed jobs only",
            manifest.len()
        );
        println!("{}", manifest.to_table().render());
    }

    println!("{}", store.summary_table().render());

    if let Some(name) = &args.csv {
        let path = zhuyi_bench::write_results(name, &store.to_csv());
        println!("wrote {}", path.display());
        if let Some(manifest) = &quarantine {
            let path = zhuyi_bench::write_results(&quarantine_name(name), &manifest.to_csv());
            println!("wrote {}", path.display());
        }
    }
    if let Some(name) = &args.json {
        let path = zhuyi_bench::write_results(name, &store.to_json());
        println!("wrote {}", path.display());
        if let Some(manifest) = &quarantine {
            let path = zhuyi_bench::write_results(&quarantine_name(name), &manifest.to_json());
            println!("wrote {}", path.display());
        }
    }
    if args.traces {
        for (name, csv) in store.kept_traces() {
            let path = zhuyi_bench::write_results(&name, csv);
            println!("wrote {}", path.display());
        }
    }
    if let Some(snapshot) = &telemetry_snapshot {
        let name = args.telemetry_out.clone().unwrap_or_else(|| {
            args.json
                .as_deref()
                .or(args.csv.as_deref())
                .map_or_else(|| "telemetry.json".to_string(), telemetry_name)
        });
        let path = zhuyi_bench::write_results(&name, &snapshot.to_json());
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
