//! `fleet_shard` — one sweep worker process.
//!
//! Connects to a `fleet_sweep --dist` coordinator, executes the shards it
//! is assigned through the fleet engine's metrics-only execution path,
//! and streams each job's result back the moment it finishes. Normally
//! spawned by the coordinator itself; run it by hand (or on another host)
//! to join a coordinator that passed `--listen`:
//!
//! ```text
//! USAGE:
//!   fleet_shard --connect HOST:PORT [--name NAME]
//!               [--spawned] [--fail-after N] [--help]
//! ```
//!
//! `--spawned` marks the worker as coordinator-spawned (eligible for
//! respawn after a crash); `--fail-after N` is the fault-injection hook —
//! the process exits hard (code 17) after streaming N results — used by
//! the crash-recovery tests.

use std::process::ExitCode;
use zhuyi_distd::{cli, run_worker, WorkerOptions};

fn parse_args() -> Result<WorkerOptions, String> {
    let mut connect: Option<String> = None;
    let mut name: Option<String> = None;
    let mut spawned = false;
    let mut fail_after: Option<u32> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--connect" => connect = Some(cli::parse_addr("--connect", &value("--connect")?)?),
            "--name" => name = Some(value("--name")?),
            "--spawned" => spawned = true,
            "--fail-after" => fail_after = Some(cli::parse_fail_after(&value("--fail-after")?)?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let connect = connect.ok_or_else(|| "--connect HOST:PORT is required".to_string())?;
    let mut options = WorkerOptions::new(connect);
    if let Some(name) = name {
        options.name = name;
    }
    options.spawned = spawned;
    options.fail_after = fail_after;
    Ok(options)
}

fn usage() {
    eprintln!(
        "fleet_shard — distributed sweep worker\n\n\
         USAGE:\n  fleet_shard --connect HOST:PORT [--name NAME] [--spawned]\n\
         \x20             [--fail-after N]\n\n\
         Joins the fleet coordinator at HOST:PORT (a `fleet_sweep --dist` run,\n\
         usually one that passed --listen), executes assigned job shards and\n\
         streams results back. --fail-after N crashes the process (exit 17)\n\
         after N results — fault injection for the crash-recovery tests."
    );
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            usage();
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    match run_worker(&options) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleet_shard[{}]: {e}", options.name);
            ExitCode::FAILURE
        }
    }
}
