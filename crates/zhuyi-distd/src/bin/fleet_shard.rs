//! `fleet_shard` — one sweep worker process.
//!
//! Connects to a `fleet_sweep --dist` coordinator, executes the shards it
//! is assigned through the fleet engine's metrics-only execution path,
//! and streams each job's result back the moment it finishes. Normally
//! spawned by the coordinator itself; run it by hand (or on another host)
//! to join a coordinator that passed `--listen`:
//!
//! ```text
//! USAGE:
//!   fleet_shard --connect HOST:PORT [--name NAME] [--spawned]
//!               [--fail-after N] [--chaos-seed N] [--chaos-profile NAME]
//!               [--poison-job ID] [--wedge-job ID] [--corrupt-job ID[:DELTA]]
//!               [--slow-start MS] [--help]
//! ```
//!
//! `--spawned` marks the worker as coordinator-spawned (eligible for
//! respawn after a crash). The remaining flags are fault-injection hooks
//! for the chaos and crash-recovery tests: `--fail-after N` exits hard
//! (code 17) after streaming N results; `--chaos-seed`/`--chaos-profile`
//! inject a deterministic fault stream into every outbound frame;
//! `--poison-job ID` panics executing that job (containment turns it into
//! a `JobFailed` strike); `--wedge-job ID` hangs on that job forever;
//! `--corrupt-job ID[:DELTA]` perturbs that job's result (detected by
//! `--verify-fraction` cross-checking); `--slow-start MS` delays the
//! connect.

use std::process::ExitCode;
use std::time::Duration;
use zhuyi_distd::{cli, run_worker, ChaosSpec, WorkerOptions};

fn parse_job_id(flag: &str, spec: &str) -> Result<u64, String> {
    spec.trim()
        .parse()
        .map_err(|_| format!("{flag} expects a job id, got {spec:?}"))
}

/// `ID` or `ID:DELTA` (delta defaults to 1; the n-th corruption shifts
/// the result by `delta * n`, so two corrupt executions never agree).
fn parse_corrupt_job(spec: &str) -> Result<(u64, u64), String> {
    let (id, delta) = match spec.trim().split_once(':') {
        Some((id, delta)) => (id, delta),
        None => (spec.trim(), "1"),
    };
    let id = parse_job_id("--corrupt-job", id)?;
    let delta: u64 = delta
        .trim()
        .parse()
        .map_err(|_| format!("--corrupt-job expects ID[:DELTA], got {spec:?}"))?;
    if delta == 0 {
        return Err("--corrupt-job DELTA must be >= 1".to_string());
    }
    Ok((id, delta))
}

fn parse_args() -> Result<WorkerOptions, String> {
    let mut connect: Option<String> = None;
    let mut name: Option<String> = None;
    let mut spawned = false;
    let mut fail_after: Option<u32> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_profile = None;
    let mut poison_job: Option<u64> = None;
    let mut wedge_job: Option<u64> = None;
    let mut corrupt_job: Option<(u64, u64)> = None;
    let mut slow_start: Option<Duration> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--connect" => connect = Some(cli::parse_addr("--connect", &value("--connect")?)?),
            "--name" => name = Some(value("--name")?),
            "--spawned" => spawned = true,
            "--fail-after" => fail_after = Some(cli::parse_fail_after(&value("--fail-after")?)?),
            "--chaos-seed" => chaos_seed = Some(cli::parse_chaos_seed(&value("--chaos-seed")?)?),
            "--chaos-profile" => {
                chaos_profile = Some(cli::parse_chaos_profile(&value("--chaos-profile")?)?)
            }
            "--poison-job" => {
                poison_job = Some(parse_job_id("--poison-job", &value("--poison-job")?)?)
            }
            "--wedge-job" => wedge_job = Some(parse_job_id("--wedge-job", &value("--wedge-job")?)?),
            "--corrupt-job" => corrupt_job = Some(parse_corrupt_job(&value("--corrupt-job")?)?),
            "--slow-start" => {
                let ms: u64 = value("--slow-start")?
                    .trim()
                    .parse()
                    .map_err(|_| "--slow-start expects milliseconds".to_string())?;
                slow_start = Some(Duration::from_millis(ms));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let connect = connect.ok_or_else(|| "--connect HOST:PORT is required".to_string())?;
    if chaos_profile.is_some() && chaos_seed.is_none() {
        return Err("--chaos-profile requires --chaos-seed (the fault stream is seeded)".into());
    }
    let mut options = WorkerOptions::new(connect);
    if let Some(name) = name {
        options.name = name;
    }
    options.spawned = spawned;
    options.fail_after = fail_after;
    options.chaos = chaos_seed.map(|seed| ChaosSpec {
        seed,
        profile: chaos_profile
            .unwrap_or_else(|| cli::parse_chaos_profile("mild").expect("built-in")),
    });
    options.poison_job = poison_job;
    options.wedge_job = wedge_job;
    options.corrupt_job = corrupt_job;
    options.slow_start = slow_start;
    Ok(options)
}

fn usage() {
    eprintln!(
        "fleet_shard — distributed sweep worker\n\n\
         USAGE:\n  fleet_shard --connect HOST:PORT [--name NAME] [--spawned]\n\
         \x20             [--fail-after N] [--chaos-seed N] [--chaos-profile NAME]\n\
         \x20             [--poison-job ID] [--wedge-job ID] [--corrupt-job ID[:DELTA]]\n\
         \x20             [--slow-start MS]\n\n\
         Joins the fleet coordinator at HOST:PORT (a `fleet_sweep --dist` run,\n\
         usually one that passed --listen), executes assigned job shards and\n\
         streams results back.\n\n\
         FAULT INJECTION (chaos / crash-recovery tests):\n\
         \x20 --fail-after N         exit hard (code 17) after N results\n\
         \x20 --chaos-seed N         deterministic faults on every outbound frame\n\
         \x20 --chaos-profile NAME   mild (default) | storm | drops | corrupt\n\
         \x20 --poison-job ID        panic executing job ID (contained -> JobFailed)\n\
         \x20 --wedge-job ID         hang forever on job ID (deadline fodder)\n\
         \x20 --corrupt-job ID[:D]   perturb job ID's result by D*n on the n-th run\n\
         \x20 --slow-start MS        sleep MS ms before connecting"
    );
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            usage();
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    match run_worker(&options) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleet_shard[{}]: {e}", options.name);
            ExitCode::FAILURE
        }
    }
}
