//! The coordinator/worker wire protocol: length-prefixed frames over any
//! byte stream, with a versioned handshake.
//!
//! The workspace is hermetic (its `serde` is a no-op marker shim, like
//! every other persisted format in the repo — CSV, JSON, traces — the
//! encoding here is hand-rolled), so this module defines an explicit,
//! byte-deterministic binary codec for exactly the types that cross a
//! process boundary: [`SweepJob`] assignments going out and [`JobResult`]s
//! coming back.
//!
//! # Framing
//!
//! Every frame is `u32-LE payload length` + `u32-LE FNV-1a checksum` +
//! payload; the payload is a one-byte [`Frame`] tag followed by
//! tag-specific fields. Integers are little-endian, `f64`s travel as
//! their IEEE-754 bit pattern ([`f64::to_bits`]) so results round-trip
//! **bit-exactly** — the property the distributed==single-process
//! byte-determinism guarantee rests on — and strings are `u32` length +
//! UTF-8 bytes. The checksum (see [`payload_checksum`]) turns in-flight
//! payload corruption into a loud [`WireError::Malformed`] disconnect
//! instead of a silently wrong result; the coordinator then requeues the
//! dead connection's work, so the determinism guarantee survives a
//! corrupting transport.
//!
//! # Session shape
//!
//! Worker sessions (unchanged since v4 except that execution options
//! moved from `Welcome` into each `Assign` under v7, so a warm worker
//! can serve consecutive plans with different options):
//!
//! ```text
//! worker → Hello{version, spawned, name}
//! coord  → Welcome{version, telemetry}          (or Reject{reason} + close)
//! coord  → Assign{batch, options, jobs}         (repeatedly)
//! worker → Result{job_result}                   (streamed, one per job)
//! worker → JobFailed{job, error}                (contained panic / fault)
//! worker → BatchDone{batch}
//! worker → Heartbeat                            (periodic, from a side thread)
//! coord  → Revoke{job_ids}                      (work stealing: skip if unstarted)
//! coord  → Shutdown                             (sweep complete)
//! ```
//!
//! Client sessions (new under v7; see [`crate::daemon`]):
//!
//! ```text
//! client → ClientHello{version, client}
//! daemon → ClientWelcome{version, draining}     (or Reject{reason} + close)
//! client → Submit{fingerprint, options, jobs}
//! daemon → Accepted{fingerprint, deduped, position}
//!                                               (or Busy{queue_limit}: shed, retry later)
//! client → Status{fingerprint}                  (poll; every client frame renews the lease)
//! daemon → StatusReport{fingerprint, state, completed, total}
//! client → FetchResults{fingerprint}            (once StatusReport says Completed)
//! daemon → Results{fingerprint, results}
//! client → Cancel{fingerprint}                  (queued plans only)
//! client → Drain                                (finish in-flight, refuse new, exit)
//! daemon → DrainAck{queued}
//! ```
//!
//! A version mismatch at handshake is answered with [`Frame::Reject`] and
//! a closed connection; the worker exits non-zero.

use std::fmt;
use std::io::{Read, Write};
use zhuyi_fleet::store::{AnalysisOutcome, ProbeOutcome};
use zhuyi_fleet::{
    ExecOptions, JobId, JobKind, JobOutcome, JobResult, JobSpec, MsfSearch, SweepJob,
};
use zhuyi_fleet::{PredictorChoice, RateSpec};

use av_scenarios::catalog::{Mrf, ScenarioId};
use zhuyi_registry::{ScenarioDef, ScenarioSource};

/// Protocol version sent in the handshake; bumped on any frame-layout
/// change. Coordinator and worker must match exactly. v4 added per-frame
/// payload checksums and the [`Frame::JobFailed`] error taxonomy; v5
/// added the sweep-wide `seed_blocks` granularity to [`Frame::Welcome`];
/// v6 added the `telemetry` flag to [`Frame::Welcome`], the
/// [`Frame::Metrics`] snapshot piggyback, and heartbeat echoes
/// (coordinator → worker) for round-trip latency measurement; v7 moved
/// the execution options from [`Frame::Welcome`] into each
/// [`Frame::Assign`] (warm workers serve consecutive plans with
/// different options) and added the client-session frames
/// ([`Frame::ClientHello`] through [`Frame::DrainAck`]).
pub const PROTOCOL_VERSION: u16 = 7;

/// Upper bound on a single frame's payload (defends both sides against a
/// corrupt or hostile length prefix). Kept traces are the largest payload
/// in practice and sit well under this.
pub const MAX_FRAME_LEN: u32 = 256 * 1024 * 1024;

/// Errors produced while encoding, decoding, or transporting frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed (includes EOF mid-frame).
    Io(std::io::Error),
    /// The bytes did not decode as the claimed frame.
    Malformed(String),
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::FrameTooLarge(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// FNV-1a (32-bit) over a frame payload — the per-frame integrity check
/// written between the length prefix and the payload. Also used for
/// checkpoint records, so both persisted and in-flight bytes share one
/// corruption detector.
pub fn payload_checksum(payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &byte in payload {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Why a job failed on a worker — the structured taxonomy carried by
/// [`Frame::JobFailed`] and recorded per strike in the coordinator's
/// quarantine manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobErrorKind {
    /// The engine panicked while executing the job; the worker contained
    /// the panic and kept serving its queue.
    Panic,
    /// The coordinator's per-job deadline expired without a result (the
    /// job wedged, or its worker stopped making progress).
    Deadline,
}

impl JobErrorKind {
    /// Stable lower-case name used in exports and logs.
    pub fn name(self) -> &'static str {
        match self {
            JobErrorKind::Panic => "panic",
            JobErrorKind::Deadline => "deadline",
        }
    }
}

/// One recorded job failure: what kind, plus a human-readable detail
/// (panic message, deadline duration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The failure class.
    pub kind: JobErrorKind,
    /// Free-text detail for logs and the quarantine manifest.
    pub detail: String,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.detail)
    }
}

/// One protocol message. See the module docs for the session shape.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → coordinator: open a session.
    Hello {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u16,
        /// Whether the coordinator spawned this worker itself (spawned
        /// workers are respawned on crash; externally joined ones are not).
        spawned: bool,
        /// Human-readable worker name for logs and stats.
        name: String,
    },
    /// Coordinator → worker: session accepted. Execution options travel
    /// per-[`Frame::Assign`] since v7, so a warm worker session can span
    /// plans with different options.
    Welcome {
        /// The coordinator's [`PROTOCOL_VERSION`] (echoed back).
        version: u16,
        /// Whether the sweep runs with telemetry: the worker installs a
        /// local registry and piggybacks cumulative [`Frame::Metrics`]
        /// snapshots onto its result stream. Strictly out of band —
        /// sweep exports are byte-identical either way.
        telemetry: bool,
    },
    /// Coordinator → worker: session refused (version mismatch, shutting
    /// down); the connection closes right after.
    Reject {
        /// Why the session was refused.
        reason: String,
    },
    /// Coordinator → worker: execute these jobs in order.
    Assign {
        /// Batch id echoed back in [`Frame::BatchDone`].
        batch: u32,
        /// The plan-wide execution options for this shard. `batch_lanes`
        /// and `seed_blocks` are encoded as `u32` on the wire (larger
        /// counts are meaningless).
        options: ExecOptions,
        /// The shard's jobs, ascending by id.
        jobs: Vec<SweepJob>,
    },
    /// Coordinator → worker: these job ids were reassigned elsewhere
    /// (work stealing); skip any of them not yet started.
    Revoke {
        /// Raw [`JobId`] values to skip.
        jobs: Vec<u64>,
    },
    /// Worker → coordinator: one finished job (streamed as soon as it
    /// completes, so a crash loses at most the job in progress).
    Result {
        /// The finished job and its outcome.
        result: Box<JobResult>,
    },
    /// Worker → coordinator: a job failed in a contained way (the worker
    /// survives and keeps executing the rest of its batch). The
    /// coordinator counts this as one strike against the job.
    JobFailed {
        /// Raw [`JobId`] of the failed job.
        job: u64,
        /// What went wrong.
        error: JobError,
    },
    /// Worker → coordinator: every non-revoked job of the batch was
    /// executed and its result already streamed.
    BatchDone {
        /// The batch id from [`Frame::Assign`].
        batch: u32,
    },
    /// Worker → coordinator: liveness signal (sent from a side thread so
    /// long-running jobs do not read as crashes). Under protocol v6 the
    /// coordinator echoes every heartbeat straight back, and the worker
    /// times the round trip.
    Heartbeat,
    /// Coordinator → worker: the sweep is complete; exit cleanly.
    Shutdown,
    /// Worker → coordinator: cumulative telemetry snapshot, sent
    /// immediately before each [`Frame::Result`] when the sweep runs
    /// with telemetry. Cumulative (not a delta): the coordinator keeps
    /// only the latest per worker, so stream ordering guarantees the
    /// fold is complete once the last result has landed.
    Metrics {
        /// The worker's registry snapshot, whole-session cumulative.
        /// Boxed: a snapshot is by far the largest payload and would
        /// otherwise bloat every `Frame` on the stack.
        snapshot: Box<zhuyi_telemetry::Snapshot>,
    },
    /// Client → daemon: open a client session (distinguished from a
    /// worker session by this first frame — workers open with
    /// [`Frame::Hello`]).
    ClientHello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
        /// Human-readable client name for logs and lease bookkeeping.
        client: String,
    },
    /// Daemon → client: session accepted.
    ClientWelcome {
        /// The daemon's [`PROTOCOL_VERSION`] (echoed back).
        version: u16,
        /// Whether the daemon is draining: submits will be answered with
        /// [`Frame::Busy`], but status/fetch still work.
        draining: bool,
    },
    /// Client → daemon: submit a plan for execution. Retrying the exact
    /// same submit is safe: the daemon dedups on `fingerprint` and
    /// answers [`Frame::Accepted`] with `deduped: true`.
    Submit {
        /// The client-side plan fingerprint
        /// ([`crate::checkpoint::plan_fingerprint`] over `jobs` +
        /// `options`) — the plan's identity for dedup, status, cancel
        /// and fetch.
        fingerprint: u64,
        /// Plan-wide execution options.
        options: ExecOptions,
        /// The plan's jobs, ascending by id from 0.
        jobs: Vec<SweepJob>,
    },
    /// Daemon → client: the submit was admitted (or matched an already
    /// known plan).
    Accepted {
        /// Echo of the submitted fingerprint.
        fingerprint: u64,
        /// `true` when the fingerprint was already known (a retried
        /// submit); the plan was **not** enqueued a second time.
        deduped: bool,
        /// Plans ahead of this one (0 = running or done).
        position: u32,
    },
    /// Daemon → client: the admission queue is full (or the daemon is
    /// draining); the plan was **not** enqueued. Back off and retry.
    Busy {
        /// The admission-queue capacity that was exhausted.
        queue_limit: u32,
    },
    /// Client → daemon: poll a submitted plan. Any client frame naming a
    /// fingerprint renews that plan's lease.
    Status {
        /// The plan fingerprint to query.
        fingerprint: u64,
    },
    /// Daemon → client: answer to [`Frame::Status`].
    StatusReport {
        /// Echo of the queried fingerprint.
        fingerprint: u64,
        /// Where the plan stands.
        state: PlanState,
        /// Results recorded so far.
        completed: u64,
        /// Total jobs in the plan (0 when the plan is unknown).
        total: u64,
    },
    /// Client → daemon: cancel a **queued** plan (a running plan
    /// finishes regardless — determinism makes the result worth keeping).
    Cancel {
        /// The plan fingerprint to cancel.
        fingerprint: u64,
    },
    /// Client → daemon: stream back a completed plan's results.
    FetchResults {
        /// The plan fingerprint to fetch.
        fingerprint: u64,
    },
    /// Daemon → client: a completed plan's results, id-deduplicated and
    /// ascending by job id — exactly the single-process merge order.
    Results {
        /// Echo of the fetched fingerprint.
        fingerprint: u64,
        /// Every job result of the plan, ascending by job id.
        results: Vec<JobResult>,
    },
    /// Client → daemon: finish in-flight work, refuse new submits, flush
    /// the journal and exit.
    Drain,
    /// Daemon → client: drain accepted.
    DrainAck {
        /// Plans still queued or running that the drain will finish.
        queued: u32,
    },
}

/// Where a submitted plan stands in the daemon's lifecycle, as reported
/// by [`Frame::StatusReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanState {
    /// The fingerprint is not (or no longer) known to the daemon.
    Unknown,
    /// Admitted, waiting in the queue.
    Queued,
    /// Currently executing.
    Running,
    /// Every job finished; results are ready to fetch.
    Completed,
    /// Cancelled while queued (or its lease expired before it ran).
    Cancelled,
}

impl PlanState {
    /// Stable lower-case name used in logs and exports.
    pub fn name(self) -> &'static str {
        match self {
            PlanState::Unknown => "unknown",
            PlanState::Queued => "queued",
            PlanState::Running => "running",
            PlanState::Completed => "completed",
            PlanState::Cancelled => "cancelled",
        }
    }
}

/// The telemetry catalog slot for a frame, for the frames/bytes-by-kind
/// wire accounting.
pub fn frame_kind(frame: &Frame) -> zhuyi_telemetry::WireKind {
    use zhuyi_telemetry::WireKind;
    match frame {
        Frame::Hello { .. } => WireKind::Hello,
        Frame::Welcome { .. } => WireKind::Welcome,
        Frame::Reject { .. } => WireKind::Reject,
        Frame::Assign { .. } => WireKind::Assign,
        Frame::Revoke { .. } => WireKind::Revoke,
        Frame::Result { .. } => WireKind::Result,
        Frame::JobFailed { .. } => WireKind::JobFailed,
        Frame::BatchDone { .. } => WireKind::BatchDone,
        Frame::Heartbeat => WireKind::Heartbeat,
        Frame::Shutdown => WireKind::Shutdown,
        Frame::Metrics { .. } => WireKind::Metrics,
        Frame::ClientHello { .. } => WireKind::ClientHello,
        Frame::ClientWelcome { .. } => WireKind::ClientWelcome,
        Frame::Submit { .. } => WireKind::Submit,
        Frame::Accepted { .. } => WireKind::Accepted,
        Frame::Busy { .. } => WireKind::Busy,
        Frame::Status { .. } => WireKind::Status,
        Frame::StatusReport { .. } => WireKind::StatusReport,
        Frame::Cancel { .. } => WireKind::Cancel,
        Frame::FetchResults { .. } => WireKind::FetchResults,
        Frame::Results { .. } => WireKind::Results,
        Frame::Drain => WireKind::Drain,
        Frame::DrainAck { .. } => WireKind::DrainAck,
    }
}

// --- primitive encoders -------------------------------------------------

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
    }
}

// --- primitive decoder --------------------------------------------------

/// Cursor over one frame's payload bytes.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("payload truncated".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn boolean(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!("bool byte {other}"))),
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("non-UTF-8 string".into()))
    }

    pub(crate) fn opt_f64(&mut self) -> Result<Option<f64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            other => Err(WireError::Malformed(format!("option tag {other}"))),
        }
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

// --- domain codecs ------------------------------------------------------

pub(crate) fn put_exec_options(out: &mut Vec<u8>, options: ExecOptions) {
    put_bool(out, options.record_traces);
    put_u32(out, options.batch_lanes as u32);
    put_u32(out, options.seed_blocks as u32);
}

pub(crate) fn exec_options(r: &mut Reader<'_>) -> Result<ExecOptions, WireError> {
    Ok(ExecOptions {
        record_traces: r.boolean()?,
        batch_lanes: r.u32()? as usize,
        seed_blocks: r.u32()? as usize,
    })
}

fn put_plan_state(out: &mut Vec<u8>, state: PlanState) {
    out.push(match state {
        PlanState::Unknown => 0,
        PlanState::Queued => 1,
        PlanState::Running => 2,
        PlanState::Completed => 3,
        PlanState::Cancelled => 4,
    });
}

fn plan_state(r: &mut Reader<'_>) -> Result<PlanState, WireError> {
    Ok(match r.u8()? {
        0 => PlanState::Unknown,
        1 => PlanState::Queued,
        2 => PlanState::Running,
        3 => PlanState::Completed,
        4 => PlanState::Cancelled,
        other => return Err(WireError::Malformed(format!("plan-state tag {other}"))),
    })
}

fn put_rate_spec(out: &mut Vec<u8>, spec: &RateSpec) {
    match spec {
        RateSpec::Uniform(r) => {
            out.push(0);
            put_f64(out, *r);
        }
        RateSpec::PerCamera(rs) => {
            out.push(1);
            put_u32(out, rs.len() as u32);
            for &r in rs {
                put_f64(out, r);
            }
        }
    }
}

fn rate_spec(r: &mut Reader<'_>) -> Result<RateSpec, WireError> {
    match r.u8()? {
        0 => Ok(RateSpec::Uniform(r.f64()?)),
        1 => {
            let n = r.u32()? as usize;
            // Capacity capped: `n` is untrusted bytes, and the per-element
            // reads below bound the real length anyway.
            let mut rates = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                rates.push(r.f64()?);
            }
            Ok(RateSpec::PerCamera(rates))
        }
        other => Err(WireError::Malformed(format!("rate-spec tag {other}"))),
    }
}

fn put_scenario(out: &mut Vec<u8>, scenario: &ScenarioSource) {
    match scenario {
        ScenarioSource::Catalog(id) => {
            out.push(0);
            out.push(id.index() as u8);
        }
        ScenarioSource::Def(def) => {
            // Registry-defined scenarios travel as their canonical text:
            // `parse(to_text(d)) == d`, so the worker rebuilds the exact
            // same definition and the distributed==single-process
            // byte-determinism guarantee extends to generated corpora.
            out.push(1);
            put_str(out, &def.to_text());
        }
    }
}

fn scenario(r: &mut Reader<'_>) -> Result<ScenarioSource, WireError> {
    match r.u8()? {
        0 => {
            let index = r.u8()? as usize;
            let id = ScenarioId::from_index(index)
                .ok_or_else(|| WireError::Malformed(format!("scenario index {index}")))?;
            Ok(ScenarioSource::Catalog(id))
        }
        1 => {
            let text = r.string()?;
            let def = ScenarioDef::parse(&text)
                .map_err(|e| WireError::Malformed(format!("scenario definition: {e}")))?;
            Ok(ScenarioSource::from(def))
        }
        other => Err(WireError::Malformed(format!("scenario tag {other}"))),
    }
}

pub(crate) fn put_job(out: &mut Vec<u8>, job: &SweepJob) {
    put_u64(out, job.id.0);
    put_scenario(out, &job.spec.scenario);
    put_u64(out, job.spec.seed);
    match &job.spec.kind {
        JobKind::Probe { plan, keep_trace } => {
            out.push(0);
            put_rate_spec(out, plan);
            put_bool(out, *keep_trace);
        }
        JobKind::MinSafeFpr { candidates } => {
            out.push(1);
            put_u32(out, candidates.len() as u32);
            for &c in candidates {
                put_u32(out, c);
            }
        }
        JobKind::Analyze {
            plan,
            predictor,
            stride,
        } => {
            out.push(2);
            put_rate_spec(out, plan);
            out.push(match predictor {
                PredictorChoice::Oracle => 0,
                PredictorChoice::ConstantVelocity => 1,
                PredictorChoice::ConstantAcceleration => 2,
            });
            put_u64(out, *stride as u64);
        }
    }
}

pub(crate) fn job(r: &mut Reader<'_>) -> Result<SweepJob, WireError> {
    let id = JobId(r.u64()?);
    let scenario = scenario(r)?;
    let seed = r.u64()?;
    let kind = match r.u8()? {
        0 => JobKind::Probe {
            plan: rate_spec(r)?,
            keep_trace: r.boolean()?,
        },
        1 => {
            let n = r.u32()? as usize;
            // Capacity capped against untrusted counts (see rate_spec).
            let mut candidates = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                candidates.push(r.u32()?);
            }
            JobKind::MinSafeFpr { candidates }
        }
        2 => JobKind::Analyze {
            plan: rate_spec(r)?,
            predictor: match r.u8()? {
                0 => PredictorChoice::Oracle,
                1 => PredictorChoice::ConstantVelocity,
                2 => PredictorChoice::ConstantAcceleration,
                other => return Err(WireError::Malformed(format!("predictor tag {other}"))),
            },
            stride: r.u64()? as usize,
        },
        other => return Err(WireError::Malformed(format!("job-kind tag {other}"))),
    };
    Ok(SweepJob {
        id,
        spec: JobSpec {
            scenario,
            seed,
            kind,
        },
    })
}

/// Encodes one [`JobResult`] (also the checkpoint record format — see
/// [`crate::checkpoint`]).
pub fn put_job_result(out: &mut Vec<u8>, result: &JobResult) {
    put_job(out, &result.job);
    match &result.outcome {
        JobOutcome::Probe(p) => {
            out.push(0);
            put_bool(out, p.collided);
            put_opt_f64(out, p.collision_time.map(|t| t.value()));
            match p.collision_actor {
                None => out.push(0),
                Some(a) => {
                    out.push(1);
                    put_u32(out, a.0);
                }
            }
            put_opt_f64(out, p.min_clearance.map(|c| c.value()));
            put_f64(out, p.duration.value());
            match &p.trace_csv {
                None => out.push(0),
                Some(csv) => {
                    out.push(1);
                    put_str(out, csv);
                }
            }
        }
        JobOutcome::MinSafeFpr(m) => {
            out.push(1);
            match m.mrf {
                Mrf::BelowMinimumTested => out.push(0),
                Mrf::Fpr(rate) => {
                    out.push(1);
                    put_u32(out, rate);
                }
                Mrf::AboveMaximumTested => out.push(2),
            }
            put_u32(out, m.sims_run);
            put_u32(out, m.grid_size);
            put_u32(out, m.grid_min);
            put_u32(out, m.grid_max);
        }
        JobOutcome::Analysis(a) => {
            out.push(2);
            put_bool(out, a.collided);
            put_u64(out, a.steps as u64);
            put_opt_f64(out, a.max_camera_fpr);
            put_u64(out, a.constraint_evaluations);
        }
    }
}

pub(crate) fn job_result(r: &mut Reader<'_>) -> Result<JobResult, WireError> {
    use av_core::state::ActorId;
    use av_core::units::{Meters, Seconds};
    let job = job(r)?;
    let outcome = match r.u8()? {
        0 => {
            let collided = r.boolean()?;
            let collision_time = r.opt_f64()?.map(Seconds);
            let collision_actor = match r.u8()? {
                0 => None,
                1 => Some(ActorId(r.u32()?)),
                other => return Err(WireError::Malformed(format!("actor tag {other}"))),
            };
            let min_clearance = r.opt_f64()?.map(Meters);
            let duration = Seconds(r.f64()?);
            let trace_csv = match r.u8()? {
                0 => None,
                1 => Some(r.string()?),
                other => return Err(WireError::Malformed(format!("trace tag {other}"))),
            };
            JobOutcome::Probe(ProbeOutcome {
                collided,
                collision_time,
                collision_actor,
                min_clearance,
                duration,
                trace_csv,
            })
        }
        1 => {
            let mrf = match r.u8()? {
                0 => Mrf::BelowMinimumTested,
                1 => Mrf::Fpr(r.u32()?),
                2 => Mrf::AboveMaximumTested,
                other => return Err(WireError::Malformed(format!("mrf tag {other}"))),
            };
            JobOutcome::MinSafeFpr(MsfSearch {
                mrf,
                sims_run: r.u32()?,
                grid_size: r.u32()?,
                grid_min: r.u32()?,
                grid_max: r.u32()?,
            })
        }
        2 => JobOutcome::Analysis(AnalysisOutcome {
            collided: r.boolean()?,
            steps: r.u64()? as usize,
            max_camera_fpr: r.opt_f64()?,
            constraint_evaluations: r.u64()?,
        }),
        other => return Err(WireError::Malformed(format!("outcome tag {other}"))),
    };
    Ok(JobResult { job, outcome })
}

/// Decodes a [`JobResult`] from exactly `bytes` (the checkpoint record
/// format; the inverse of [`put_job_result`]).
///
/// # Errors
///
/// [`WireError::Malformed`] on truncated, trailing, or invalid bytes.
pub fn decode_job_result(bytes: &[u8]) -> Result<JobResult, WireError> {
    let mut r = Reader::new(bytes);
    let result = job_result(&mut r)?;
    r.finish()?;
    Ok(result)
}

// --- frame codec --------------------------------------------------------

/// Encodes a frame payload (tag + fields, *without* the length prefix).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match frame {
        Frame::Hello {
            version,
            spawned,
            name,
        } => {
            out.push(0);
            put_u16(&mut out, *version);
            put_bool(&mut out, *spawned);
            put_str(&mut out, name);
        }
        Frame::Welcome { version, telemetry } => {
            out.push(1);
            put_u16(&mut out, *version);
            put_bool(&mut out, *telemetry);
        }
        Frame::Reject { reason } => {
            out.push(2);
            put_str(&mut out, reason);
        }
        Frame::Assign {
            batch,
            options,
            jobs,
        } => {
            out.push(3);
            put_u32(&mut out, *batch);
            put_exec_options(&mut out, *options);
            put_u32(&mut out, jobs.len() as u32);
            for j in jobs {
                put_job(&mut out, j);
            }
        }
        Frame::Revoke { jobs } => {
            out.push(4);
            put_u32(&mut out, jobs.len() as u32);
            for &id in jobs {
                put_u64(&mut out, id);
            }
        }
        Frame::Result { result } => {
            out.push(5);
            put_job_result(&mut out, result);
        }
        Frame::BatchDone { batch } => {
            out.push(6);
            put_u32(&mut out, *batch);
        }
        Frame::Heartbeat => out.push(7),
        Frame::Shutdown => out.push(8),
        Frame::JobFailed { job, error } => {
            out.push(9);
            put_u64(&mut out, *job);
            out.push(match error.kind {
                JobErrorKind::Panic => 0,
                JobErrorKind::Deadline => 1,
            });
            put_str(&mut out, &error.detail);
        }
        Frame::Metrics { snapshot } => {
            out.push(10);
            // The telemetry crate owns its own versioned codec; the frame
            // carries it as opaque length-prefixed bytes.
            let bytes = snapshot.encode();
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(&bytes);
        }
        Frame::ClientHello { version, client } => {
            out.push(11);
            put_u16(&mut out, *version);
            put_str(&mut out, client);
        }
        Frame::ClientWelcome { version, draining } => {
            out.push(12);
            put_u16(&mut out, *version);
            put_bool(&mut out, *draining);
        }
        Frame::Submit {
            fingerprint,
            options,
            jobs,
        } => {
            out.push(13);
            put_u64(&mut out, *fingerprint);
            put_exec_options(&mut out, *options);
            put_u32(&mut out, jobs.len() as u32);
            for j in jobs {
                put_job(&mut out, j);
            }
        }
        Frame::Accepted {
            fingerprint,
            deduped,
            position,
        } => {
            out.push(14);
            put_u64(&mut out, *fingerprint);
            put_bool(&mut out, *deduped);
            put_u32(&mut out, *position);
        }
        Frame::Busy { queue_limit } => {
            out.push(15);
            put_u32(&mut out, *queue_limit);
        }
        Frame::Status { fingerprint } => {
            out.push(16);
            put_u64(&mut out, *fingerprint);
        }
        Frame::StatusReport {
            fingerprint,
            state,
            completed,
            total,
        } => {
            out.push(17);
            put_u64(&mut out, *fingerprint);
            put_plan_state(&mut out, *state);
            put_u64(&mut out, *completed);
            put_u64(&mut out, *total);
        }
        Frame::Cancel { fingerprint } => {
            out.push(18);
            put_u64(&mut out, *fingerprint);
        }
        Frame::FetchResults { fingerprint } => {
            out.push(19);
            put_u64(&mut out, *fingerprint);
        }
        Frame::Results {
            fingerprint,
            results,
        } => {
            out.push(20);
            put_u64(&mut out, *fingerprint);
            put_u32(&mut out, results.len() as u32);
            for result in results {
                put_job_result(&mut out, result);
            }
        }
        Frame::Drain => out.push(21),
        Frame::DrainAck { queued } => {
            out.push(22);
            put_u32(&mut out, *queued);
        }
    }
    out
}

/// Decodes a frame from exactly `payload` (the inverse of
/// [`encode_frame`]).
///
/// # Errors
///
/// [`WireError::Malformed`] on truncated, trailing, or invalid bytes.
pub fn decode_frame(payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(payload);
    let frame = match r.u8()? {
        0 => Frame::Hello {
            version: r.u16()?,
            spawned: r.boolean()?,
            name: r.string()?,
        },
        1 => Frame::Welcome {
            version: r.u16()?,
            telemetry: r.boolean()?,
        },
        2 => Frame::Reject {
            reason: r.string()?,
        },
        3 => {
            let batch = r.u32()?;
            let options = exec_options(&mut r)?;
            let n = r.u32()? as usize;
            let mut jobs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                jobs.push(job(&mut r)?);
            }
            Frame::Assign {
                batch,
                options,
                jobs,
            }
        }
        4 => {
            let n = r.u32()? as usize;
            let mut jobs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                jobs.push(r.u64()?);
            }
            Frame::Revoke { jobs }
        }
        5 => Frame::Result {
            result: Box::new(job_result(&mut r)?),
        },
        6 => Frame::BatchDone { batch: r.u32()? },
        7 => Frame::Heartbeat,
        8 => Frame::Shutdown,
        9 => Frame::JobFailed {
            job: r.u64()?,
            error: JobError {
                kind: match r.u8()? {
                    0 => JobErrorKind::Panic,
                    1 => JobErrorKind::Deadline,
                    other => {
                        return Err(WireError::Malformed(format!("job-error tag {other}")));
                    }
                },
                detail: r.string()?,
            },
        },
        10 => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            Frame::Metrics {
                snapshot: Box::new(
                    zhuyi_telemetry::Snapshot::decode(bytes)
                        .map_err(|e| WireError::Malformed(format!("metrics snapshot: {e}")))?,
                ),
            }
        }
        11 => Frame::ClientHello {
            version: r.u16()?,
            client: r.string()?,
        },
        12 => Frame::ClientWelcome {
            version: r.u16()?,
            draining: r.boolean()?,
        },
        13 => {
            let fingerprint = r.u64()?;
            let options = exec_options(&mut r)?;
            let n = r.u32()? as usize;
            let mut jobs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                jobs.push(job(&mut r)?);
            }
            Frame::Submit {
                fingerprint,
                options,
                jobs,
            }
        }
        14 => Frame::Accepted {
            fingerprint: r.u64()?,
            deduped: r.boolean()?,
            position: r.u32()?,
        },
        15 => Frame::Busy {
            queue_limit: r.u32()?,
        },
        16 => Frame::Status {
            fingerprint: r.u64()?,
        },
        17 => Frame::StatusReport {
            fingerprint: r.u64()?,
            state: plan_state(&mut r)?,
            completed: r.u64()?,
            total: r.u64()?,
        },
        18 => Frame::Cancel {
            fingerprint: r.u64()?,
        },
        19 => Frame::FetchResults {
            fingerprint: r.u64()?,
        },
        20 => {
            let fingerprint = r.u64()?;
            let n = r.u32()? as usize;
            let mut results = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                results.push(job_result(&mut r)?);
            }
            Frame::Results {
                fingerprint,
                results,
            }
        }
        21 => Frame::Drain,
        22 => Frame::DrainAck { queued: r.u32()? },
        other => return Err(WireError::Malformed(format!("frame tag {other}"))),
    };
    r.finish()?;
    Ok(frame)
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// [`WireError::Io`] on stream failure, [`WireError::FrameTooLarge`] for
/// a payload over [`MAX_FRAME_LEN`] (checked before any u32 narrowing,
/// so an absurd payload can never wrap into a small length prefix).
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    write_payload(stream, &encode_frame(frame))
}

/// Encodes and writes an [`Frame::Assign`] directly from a borrowed job
/// slice — what the coordinator's hot assign/steal path uses, so shards
/// are serialized without first cloning every job into an owned `Frame`.
/// Byte-identical to `write_frame(&Frame::Assign { .. })`.
///
/// # Errors
///
/// See [`write_frame`].
pub fn write_assign(
    stream: &mut impl Write,
    batch: u32,
    options: ExecOptions,
    jobs: &[SweepJob],
) -> Result<(), WireError> {
    let mut out = Vec::with_capacity(16 + jobs.len() * 48);
    out.push(3);
    put_u32(&mut out, batch);
    put_exec_options(&mut out, options);
    put_u32(&mut out, jobs.len() as u32);
    for job in jobs {
        put_job(&mut out, job);
    }
    write_payload(stream, &out)
}

pub(crate) fn write_payload(stream: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(WireError::FrameTooLarge(
            u32::try_from(payload.len()).unwrap_or(u32::MAX),
        ));
    }
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(&payload_checksum(payload).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed, checksummed frame (blocking until complete).
///
/// # Errors
///
/// [`WireError::Io`] on stream failure or EOF mid-frame;
/// [`WireError::FrameTooLarge`] / [`WireError::Malformed`] on bad bytes,
/// including any payload whose checksum does not match — a corrupted
/// frame never decodes.
pub fn read_frame(stream: &mut impl Read) -> Result<Frame, WireError> {
    read_frame_recorded(stream, None)
}

/// [`read_frame`] with inbound telemetry: a decoded frame is accounted
/// by kind and payload bytes; checksum mismatches bump the
/// checksum-failure counter and every other failure the read-error
/// counter. With `telemetry: None` this is exactly [`read_frame`].
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_frame_recorded(
    stream: &mut impl Read,
    telemetry: Option<&zhuyi_telemetry::Registry>,
) -> Result<Frame, WireError> {
    use zhuyi_telemetry::Counter;
    let read = |stream: &mut dyn Read| -> Result<(Frame, usize), (WireError, bool)> {
        let mut header = [0u8; 8];
        stream
            .read_exact(&mut header)
            .map_err(|e| (e.into(), false))?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4"));
        let expected = u32::from_le_bytes(header[4..8].try_into().expect("4"));
        if len > MAX_FRAME_LEN {
            return Err((WireError::FrameTooLarge(len), false));
        }
        let mut payload = vec![0u8; len as usize];
        stream
            .read_exact(&mut payload)
            .map_err(|e| (e.into(), false))?;
        let actual = payload_checksum(&payload);
        if actual != expected {
            return Err((
                WireError::Malformed(format!(
                    "frame checksum mismatch: header says {expected:#010x}, \
                     payload hashes to {actual:#010x}"
                )),
                true,
            ));
        }
        let frame = decode_frame(&payload).map_err(|e| (e, false))?;
        Ok((frame, payload.len()))
    };
    match read(stream) {
        Ok((frame, len)) => {
            if let Some(reg) = telemetry {
                reg.wire_recv(frame_kind(&frame), len as u64);
            }
            Ok(frame)
        }
        Err((e, checksum)) => {
            if let Some(reg) = telemetry {
                reg.inc(if checksum {
                    Counter::ChecksumFailures
                } else {
                    Counter::WireReadErrors
                });
            }
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::state::ActorId;
    use av_core::units::{Meters, Seconds};

    fn sample_def() -> ScenarioDef {
        ScenarioDef::parse(
            "zhuyi-scenario v1\n\
             \n\
             name = Wire sample\n\
             tags = test\n\
             duration = 10.0\n\
             \n\
             [road]\n\
             kind = straight\n\
             length = 500.0\n\
             \n\
             [ego]\n\
             lane = 1\n\
             s = 10.0\n\
             speed = mph(30.0)\n\
             \n\
             [actor block]\n\
             id = 1\n\
             kind = obstacle\n\
             lane = 1\n\
             s = 200.0\n",
        )
        .expect("sample definition parses")
    }

    fn sample_jobs() -> Vec<SweepJob> {
        let mk = |id: u64, scenario: ScenarioSource, seed: u64, kind: JobKind| SweepJob {
            id: JobId(id),
            spec: JobSpec {
                scenario,
                seed,
                kind,
            },
        };
        vec![
            mk(
                0,
                ScenarioId::CutOut.into(),
                3,
                JobKind::Probe {
                    plan: RateSpec::Uniform(4.0),
                    keep_trace: true,
                },
            ),
            mk(
                1,
                ScenarioId::ChallengingCutInCurved.into(),
                6,
                JobKind::MinSafeFpr {
                    candidates: vec![1, 4, 30],
                },
            ),
            mk(
                17,
                ScenarioId::FrontRightActivity3.into(),
                0,
                JobKind::Analyze {
                    plan: RateSpec::PerCamera(vec![30.0, 15.0, 4.0, 4.0, 2.0]),
                    predictor: PredictorChoice::ConstantVelocity,
                    stride: 20,
                },
            ),
            mk(
                18,
                sample_def().into(),
                2,
                JobKind::MinSafeFpr {
                    candidates: vec![1, 4, 30],
                },
            ),
        ]
    }

    fn sample_results() -> Vec<JobResult> {
        let jobs = sample_jobs();
        vec![
            JobResult {
                job: jobs[0].clone(),
                outcome: JobOutcome::Probe(ProbeOutcome {
                    collided: true,
                    collision_time: Some(Seconds(3.7500000000001)),
                    collision_actor: Some(ActorId(2)),
                    min_clearance: Some(Meters(0.0)),
                    duration: Seconds(3.76),
                    trace_csv: Some("t,x,y\n0,1,2\n".to_string()),
                }),
            },
            JobResult {
                job: jobs[1].clone(),
                outcome: JobOutcome::MinSafeFpr(MsfSearch {
                    mrf: Mrf::Fpr(4),
                    sims_run: 3,
                    grid_size: 3,
                    grid_min: 1,
                    grid_max: 30,
                }),
            },
            JobResult {
                job: jobs[2].clone(),
                outcome: JobOutcome::Analysis(AnalysisOutcome {
                    collided: false,
                    steps: 42,
                    // A deliberately awkward double: must survive bit-exactly.
                    max_camera_fpr: Some(f64::from_bits(0x3FF5_5555_5555_5555)),
                    constraint_evaluations: 12345,
                }),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                spawned: true,
                name: "spawned-0".into(),
            },
            Frame::Welcome {
                version: PROTOCOL_VERSION,
                telemetry: true,
            },
            Frame::Reject {
                reason: "protocol version 9 != 1".into(),
            },
            Frame::Assign {
                batch: 7,
                options: ExecOptions {
                    record_traces: false,
                    batch_lanes: 0,
                    seed_blocks: 10,
                },
                jobs: sample_jobs(),
            },
            Frame::Revoke {
                jobs: vec![3, 9, 11],
            },
            Frame::Result {
                result: Box::new(sample_results().remove(0)),
            },
            Frame::BatchDone { batch: 7 },
            Frame::Heartbeat,
            Frame::Shutdown,
            Frame::JobFailed {
                job: 42,
                error: JobError {
                    kind: JobErrorKind::Panic,
                    detail: "index out of bounds: the len is 3".into(),
                },
            },
            Frame::JobFailed {
                job: 7,
                error: JobError {
                    kind: JobErrorKind::Deadline,
                    detail: "no result within 30s".into(),
                },
            },
            Frame::Metrics {
                snapshot: Box::new({
                    let reg = zhuyi_telemetry::Registry::new();
                    reg.inc(zhuyi_telemetry::Counter::JobsExecuted);
                    reg.record_rtt_us(850);
                    reg.snapshot()
                }),
            },
            Frame::ClientHello {
                version: PROTOCOL_VERSION,
                client: "client-1234".into(),
            },
            Frame::ClientWelcome {
                version: PROTOCOL_VERSION,
                draining: true,
            },
            Frame::Submit {
                fingerprint: 0xdead_beef_cafe_f00d,
                options: ExecOptions {
                    record_traces: true,
                    batch_lanes: 4,
                    seed_blocks: 0,
                },
                jobs: sample_jobs(),
            },
            Frame::Accepted {
                fingerprint: 0xdead_beef_cafe_f00d,
                deduped: true,
                position: 3,
            },
            Frame::Busy { queue_limit: 8 },
            Frame::Status {
                fingerprint: 0xdead_beef_cafe_f00d,
            },
            Frame::StatusReport {
                fingerprint: 0xdead_beef_cafe_f00d,
                state: PlanState::Running,
                completed: 17,
                total: 42,
            },
            Frame::Cancel {
                fingerprint: 0xdead_beef_cafe_f00d,
            },
            Frame::FetchResults {
                fingerprint: 0xdead_beef_cafe_f00d,
            },
            Frame::Results {
                fingerprint: 0xdead_beef_cafe_f00d,
                results: sample_results(),
            },
            Frame::Drain,
            Frame::DrainAck { queued: 2 },
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            let back = decode_frame(&bytes).expect("round trip");
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn results_round_trip_bit_exactly() {
        for result in sample_results() {
            let mut bytes = Vec::new();
            put_job_result(&mut bytes, &result);
            let back = decode_job_result(&bytes).expect("round trip");
            assert_eq!(back, result);
        }
    }

    #[test]
    fn write_assign_matches_the_owned_frame_encoding() {
        let jobs = sample_jobs();
        let options = ExecOptions {
            record_traces: false,
            batch_lanes: 3,
            seed_blocks: 8,
        };
        let mut borrowed: Vec<u8> = Vec::new();
        write_assign(&mut borrowed, 7, options, &jobs).expect("write into a Vec");
        let mut owned: Vec<u8> = Vec::new();
        write_frame(
            &mut owned,
            &Frame::Assign {
                batch: 7,
                options,
                jobs,
            },
        )
        .expect("write into a Vec");
        assert_eq!(
            borrowed, owned,
            "the two assign writers must agree byte-for-byte"
        );
    }

    #[test]
    fn stream_framing_round_trips_multiple_frames() {
        let mut buf: Vec<u8> = Vec::new();
        let frames = vec![
            Frame::Heartbeat,
            Frame::Assign {
                batch: 0,
                options: ExecOptions::default(),
                jobs: sample_jobs(),
            },
            Frame::Shutdown,
        ];
        for frame in &frames {
            write_frame(&mut buf, frame).expect("write into a Vec");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for frame in &frames {
            assert_eq!(&read_frame(&mut cursor).expect("read back"), frame);
        }
        // EOF afterwards surfaces as an I/O error, not a panic.
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn malformed_bytes_are_rejected_not_panicked() {
        assert!(matches!(decode_frame(&[99]), Err(WireError::Malformed(_))));
        assert!(matches!(decode_frame(&[]), Err(WireError::Malformed(_))));
        // Truncated Assign.
        let mut bytes = encode_frame(&Frame::Assign {
            batch: 0,
            options: ExecOptions::default(),
            jobs: sample_jobs(),
        });
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
        // Trailing garbage.
        let mut bytes = encode_frame(&Frame::Heartbeat);
        bytes.push(0);
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
        // Oversized length prefix.
        let mut framed = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        framed.extend_from_slice(&[0; 8]);
        let mut cursor = std::io::Cursor::new(framed);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn corrupted_payload_bytes_fail_the_frame_checksum() {
        let frame = Frame::Result {
            result: Box::new(sample_results().remove(0)),
        };
        let mut framed: Vec<u8> = Vec::new();
        write_frame(&mut framed, &frame).expect("write into a Vec");
        // Flip one bit in every payload byte position in turn (past the
        // 8-byte len+checksum header); each corruption must be caught.
        for pos in 8..framed.len() {
            let mut corrupt = framed.clone();
            corrupt[pos] ^= 0x10;
            let mut cursor = std::io::Cursor::new(corrupt);
            assert!(
                matches!(read_frame(&mut cursor), Err(WireError::Malformed(_))),
                "bit-flip at byte {pos} must be detected, not decoded"
            );
        }
        // An intact frame still reads back.
        let mut cursor = std::io::Cursor::new(framed);
        assert_eq!(read_frame(&mut cursor).expect("clean read"), frame);
    }

    #[test]
    fn checksum_is_a_pure_deterministic_function() {
        assert_eq!(payload_checksum(b""), 0x811c_9dc5);
        assert_eq!(payload_checksum(b"zhuyi"), payload_checksum(b"zhuyi"));
        assert_ne!(payload_checksum(b"zhuyi"), payload_checksum(b"zhuyj"));
    }
}
