//! The persistent sweep daemon: a long-lived coordinator service that
//! accepts **plan submissions over TCP**, executes them one at a time on
//! a warm worker fleet, and survives anything short of losing the disk.
//!
//! Where [`crate::coord::run_distributed`] runs one plan and dies with
//! its process, the daemon decouples plan lifetime from process lifetime:
//!
//! - **Durable plan queue.** Every admission, per-job result, completion,
//!   cancellation, and fetch is appended to a write-ahead [`crate::journal`]
//!   and flushed per record. A restarted daemon replays the journal and
//!   resumes every queued and in-flight sweep exactly where it stopped —
//!   `kill -9` mid-sweep costs at most the jobs whose results had not yet
//!   been journaled, never a queued plan.
//! - **Idempotent submission.** Plans are identified by their client-side
//!   fingerprint ([`crate::checkpoint::plan_fingerprint`]); a retried
//!   [`Frame::Submit`] matches the known fingerprint and is answered
//!   `Accepted { deduped: true }` without enqueueing a second copy, so a
//!   client that lost the first `Accepted` to a flaky link can retry
//!   blindly.
//! - **Bounded admission.** At most [`DaemonConfig::max_queue`] plans
//!   wait at a time; the daemon answers [`Frame::Busy`] beyond that (and
//!   while draining) — explicit load-shedding, never a hang and never a
//!   silent drop.
//! - **Per-client round-robin fairness.** Queued plans live in per-client
//!   FIFO lanes; the next plan to run is drawn from the lanes in rotation
//!   so one chatty client cannot starve the rest.
//! - **Lease-based orphan handling.** Every client frame naming a
//!   fingerprint renews that plan's lease. A queued plan whose lease
//!   expires is cancelled; a completed-but-unfetched plan whose lease
//!   expires has its results released. A *running* plan always finishes —
//!   execution is deterministic and the work is worth keeping.
//! - **Warm workers.** Worker sessions persist across plans (v7 carries
//!   [`ExecOptions`] per [`Frame::Assign`], not per handshake), so
//!   back-to-back plans skip process spawn and reconnect entirely.
//!   Spawned workers that crash are respawned with backoff for as long
//!   as the daemon lives.
//! - **Graceful drain.** [`Frame::Drain`] stops admission, finishes every
//!   queued and running plan, flushes the journal, shuts the fleet down,
//!   and returns — zero journal loss, ready for an upgrade restart.
//!
//! # Determinism invariant
//!
//! The results a client fetches are id-deduplicated and ascending by job
//! id — the exact single-process merge. Daemon restarts, worker churn,
//! queue order, chaos on the submit link: all invisible in the exported
//! bytes. `tests/daemon.rs` pins this with `kill -9` restarts and storm
//! chaos.
//!
//! # Scope
//!
//! The daemon's scheduler deliberately omits the one-shot coordinator's
//! tail-stealing, duplicate-execution sampling, and per-job deadlines; a
//! contained panic still costs a strike and a job that exhausts
//! [`DaemonConfig::max_job_failures`] strikes is abandoned (reported in
//! the status counts, absent from the results — the same graceful
//! degradation shape as quarantine).

use crate::coord::{self, ChildSlot, DistError, WorkerId};
use crate::journal::{self, JournalError, JournalRecord, JournalWriter};
use crate::wire::{self, Frame, PlanState, PROTOCOL_VERSION};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use zhuyi_fleet::{ExecOptions, JobResult, SweepJob};
use zhuyi_telemetry::{Counter, Gauge, Registry, Snapshot};

/// Configuration of one daemon process.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address for both workers and clients (`host:port`).
    pub listen: String,
    /// The write-ahead journal path; created if missing, replayed (and
    /// compacted) if present.
    pub journal: PathBuf,
    /// Worker processes the daemon spawns itself (external workers may
    /// join on [`DaemonConfig::listen`] regardless).
    pub spawn_workers: usize,
    /// Path of the `fleet_shard` worker binary; `None` resolves a
    /// sibling of the current executable.
    pub worker_binary: Option<PathBuf>,
    /// Admission-queue bound: plans *waiting* (not running) beyond this
    /// are answered [`Frame::Busy`].
    pub max_queue: usize,
    /// Plan lease duration; renewed by any client frame naming the plan.
    pub lease: Duration,
    /// Jobs per shard; `None` derives the coordinator's default.
    pub batch_size: Option<usize>,
    /// A worker silent for longer than this is declared dead.
    pub heartbeat_timeout: Duration,
    /// Strikes before a job is abandoned for its plan.
    pub max_job_failures: usize,
    /// Collect telemetry (daemon counters folded with worker snapshots
    /// into [`DaemonReport::telemetry`]).
    pub telemetry: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            journal: PathBuf::from("fleet.journal"),
            spawn_workers: 2,
            worker_binary: None,
            max_queue: 8,
            lease: Duration::from_secs(300),
            batch_size: None,
            heartbeat_timeout: Duration::from_secs(30),
            max_job_failures: 3,
            telemetry: false,
        }
    }
}

/// How a daemon run can fail. Once serving, the daemon only returns
/// through a drain; errors are limited to startup (bind, journal, worker
/// binary) and unrecoverable journal writes.
#[derive(Debug)]
pub enum DaemonError {
    /// Socket or process plumbing failed.
    Io(String),
    /// The journal could not be created, replayed, or appended to.
    Journal(JournalError),
    /// The worker binary could not be resolved.
    WorkerBinary(String),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io(what) => write!(f, "daemon i/o failure: {what}"),
            DaemonError::Journal(e) => write!(f, "{e}"),
            DaemonError::WorkerBinary(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<JournalError> for DaemonError {
    fn from(e: JournalError) -> Self {
        DaemonError::Journal(e)
    }
}

impl From<DistError> for DaemonError {
    fn from(e: DistError) -> Self {
        match e {
            DistError::WorkerBinary(what) => DaemonError::WorkerBinary(what),
            other => DaemonError::Io(other.to_string()),
        }
    }
}

/// Counters describing a daemon's service lifetime, returned on drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Fresh plans admitted into the queue.
    pub plans_admitted: usize,
    /// Retried submits answered from the fingerprint index.
    pub submits_deduped: usize,
    /// Submits shed with [`Frame::Busy`] (full queue or draining).
    pub submits_shed: usize,
    /// Plans that ran to completion.
    pub plans_completed: usize,
    /// Plans cancelled (client request or queued-lease expiry).
    pub plans_cancelled: usize,
    /// Leases that expired (cancelled queued plans + released results).
    pub lease_expiries: usize,
    /// Plans recovered from the journal at startup.
    pub plans_replayed: usize,
    /// Journaled results resumed at startup (jobs not re-executed).
    pub resumed_results: usize,
    /// Workers that completed the handshake.
    pub workers_connected: usize,
    /// Workers lost to EOF or heartbeat timeout.
    pub workers_lost: usize,
    /// Replacement worker processes spawned.
    pub workers_respawned: usize,
}

/// What a drained daemon hands back.
#[derive(Debug)]
pub struct DaemonReport {
    /// Service-lifetime counters.
    pub stats: DaemonStats,
    /// The folded telemetry snapshot (daemon registry + final worker
    /// snapshots in worker-id order); `None` unless
    /// [`DaemonConfig::telemetry`].
    pub telemetry: Option<Snapshot>,
}

/// One plan's in-daemon state. `results` carries what the journal knows;
/// the merge a client fetches is this map's values ascending by id.
struct PlanEntry {
    client: String,
    options: ExecOptions,
    jobs: Vec<SweepJob>,
    results: BTreeMap<u64, JobResult>,
    state: PlanState,
    /// Results released: fetched by the client, or abandoned by lease
    /// expiry. Retired entries stay in memory for fingerprint dedup and
    /// are compacted out of the journal on the next restart.
    fetched: bool,
    lease: Instant,
}

/// Scheduling state of the one plan currently executing.
struct Running {
    fingerprint: u64,
    pending: VecDeque<Vec<SweepJob>>,
    inflight: BTreeMap<u32, InflightShard>,
    failures: BTreeMap<u64, usize>,
    abandoned: BTreeSet<u64>,
    total: usize,
}

struct InflightShard {
    worker: WorkerId,
    remaining: BTreeMap<u64, SweepJob>,
}

struct WorkerConn {
    writer: TcpStream,
    name: String,
    spawned: bool,
    busy: Option<u32>,
    last_seen: Instant,
}

struct ClientConn {
    writer: TcpStream,
    name: String,
}

/// Session events pumped into the daemon's single scheduling thread.
enum Event {
    WorkerConnected {
        id: u64,
        writer: TcpStream,
        spawned: bool,
        name: String,
    },
    ClientConnected {
        id: u64,
        writer: TcpStream,
        name: String,
    },
    Frame {
        id: u64,
        frame: Frame,
    },
    Disconnected {
        id: u64,
    },
}

/// First retry delay after a failed respawn; doubles to the ceiling.
const RESPAWN_BACKOFF_FLOOR: Duration = Duration::from_millis(250);
const RESPAWN_BACKOFF_CEIL: Duration = Duration::from_secs(2);

struct Daemon {
    config: DaemonConfig,
    plans: BTreeMap<u64, PlanEntry>,
    /// Per-client FIFO lanes in first-appearance order; the round-robin
    /// cursor rotates across them.
    lanes: Vec<(String, VecDeque<u64>)>,
    rr_next: usize,
    running: Option<Running>,
    workers: BTreeMap<u64, WorkerConn>,
    clients: BTreeMap<u64, ClientConn>,
    journal: JournalWriter,
    draining: bool,
    stats: DaemonStats,
    telemetry: Option<Arc<Registry>>,
    worker_metrics: BTreeMap<u64, Snapshot>,
    next_batch: u32,
}

impl Daemon {
    fn note(&self, counter: Counter) {
        if let Some(reg) = &self.telemetry {
            reg.inc(counter);
        }
    }

    /// Plans waiting in the lanes (excludes the running plan).
    fn queued_count(&self) -> usize {
        self.lanes.iter().map(|(_, lane)| lane.len()).sum()
    }

    /// Admits `fingerprint` into its client's lane, creating the lane on
    /// the client's first submission.
    fn enqueue(&mut self, client: &str, fingerprint: u64) {
        match self.lanes.iter_mut().find(|(name, _)| name == client) {
            Some((_, lane)) => lane.push_back(fingerprint),
            None => {
                self.lanes
                    .push((client.to_string(), VecDeque::from([fingerprint])));
            }
        }
    }

    /// Removes `fingerprint` from whatever lane holds it (cancellation).
    fn unqueue(&mut self, fingerprint: u64) {
        for (_, lane) in &mut self.lanes {
            lane.retain(|&f| f != fingerprint);
        }
    }

    /// Round-robin draw: the next queued plan, rotating across client
    /// lanes so one client cannot starve the rest. Empty lanes are
    /// skipped but kept (their clients may submit again).
    fn next_plan(&mut self) -> Option<u64> {
        if self.lanes.is_empty() {
            return None;
        }
        for offset in 0..self.lanes.len() {
            let i = (self.rr_next + offset) % self.lanes.len();
            if let Some(fingerprint) = self.lanes[i].1.pop_front() {
                self.rr_next = (i + 1) % self.lanes.len();
                return Some(fingerprint);
            }
        }
        None
    }

    /// Starts the next queued plan if nothing is running.
    fn start_next_plan(&mut self) {
        if self.running.is_some() {
            return;
        }
        let Some(fingerprint) = self.next_plan() else {
            return;
        };
        let (pending_jobs, total) = {
            let Some(entry) = self.plans.get_mut(&fingerprint) else {
                return;
            };
            entry.state = PlanState::Running;
            let pending: Vec<SweepJob> = entry
                .jobs
                .iter()
                .filter(|j| !entry.results.contains_key(&j.id.0))
                .cloned()
                .collect();
            eprintln!(
                "fleet daemon: starting plan {fingerprint:#018x} for client {} \
                 ({} jobs, {} already journaled)",
                entry.client,
                entry.jobs.len(),
                entry.results.len(),
            );
            (pending, entry.jobs.len())
        };
        let batch_size = self.config.batch_size.unwrap_or_else(|| {
            coord::default_batch_size(pending_jobs.len(), self.config.spawn_workers)
        });
        self.running = Some(Running {
            fingerprint,
            pending: coord::chunk_batches(&pending_jobs, batch_size),
            inflight: BTreeMap::new(),
            failures: BTreeMap::new(),
            abandoned: BTreeSet::new(),
            total,
        });
        self.dispatch_idle();
        // A fully journaled plan (every result resumed) completes without
        // dispatching anything.
        self.check_plan_complete();
    }

    /// Gives `worker` its next shard of the running plan, if any.
    fn dispatch(&mut self, worker: WorkerId) {
        let assign_failed = {
            let Daemon {
                running,
                workers,
                plans,
                next_batch,
                ..
            } = self;
            let Some(running) = running.as_mut() else {
                return;
            };
            let Some(conn) = workers.get_mut(&worker) else {
                return;
            };
            if conn.busy.is_some() {
                return;
            }
            let Some(jobs) = running.pending.pop_front() else {
                return;
            };
            let options = plans
                .get(&running.fingerprint)
                .map(|p| p.options)
                .unwrap_or_default();
            let batch = *next_batch;
            *next_batch += 1;
            if wire::write_assign(&mut conn.writer, batch, options, &jobs).is_err() {
                running.pending.push_front(jobs);
                true
            } else {
                conn.busy = Some(batch);
                running.inflight.insert(
                    batch,
                    InflightShard {
                        worker,
                        remaining: jobs.into_iter().map(|j| (j.id.0, j)).collect(),
                    },
                );
                false
            }
        };
        if assign_failed {
            self.lose_worker(worker);
        }
    }

    fn dispatch_idle(&mut self) {
        let idle: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, c)| c.busy.is_none())
            .map(|(&id, _)| id)
            .collect();
        for worker in idle {
            self.dispatch(worker);
        }
    }

    /// Removes a worker and requeues the unfinished jobs of its shards.
    /// Returns the worker's name if the daemon spawned its process.
    fn lose_worker(&mut self, worker: WorkerId) -> Option<String> {
        let conn = self.workers.remove(&worker)?;
        let _ = conn.writer.shutdown(Shutdown::Both);
        self.stats.workers_lost += 1;
        self.note(Counter::WorkersLost);
        eprintln!(
            "fleet daemon: lost {}worker {}; reassigning its shard",
            if conn.spawned { "spawned " } else { "" },
            conn.name,
        );
        if let Some(running) = &mut self.running {
            let orphaned: Vec<u32> = running
                .inflight
                .iter()
                .filter(|(_, fl)| fl.worker == worker)
                .map(|(&batch, _)| batch)
                .collect();
            for batch in orphaned {
                let fl = running.inflight.remove(&batch).expect("batch listed");
                if !fl.remaining.is_empty() {
                    running
                        .pending
                        .push_front(fl.remaining.into_values().collect());
                }
            }
        }
        conn.spawned.then_some(conn.name)
    }

    /// Ingests one streamed result for the running plan: journal first,
    /// then credit — a result the client can ever see is always durable.
    fn handle_result(&mut self, result: JobResult) -> Result<(), DaemonError> {
        {
            let Daemon {
                running,
                plans,
                journal,
                ..
            } = self;
            let Some(running) = running.as_mut() else {
                return Ok(()); // stale result from a settled plan: ignore
            };
            let id = result.job.id.0;
            for fl in running.inflight.values_mut() {
                fl.remaining.remove(&id);
            }
            if running.abandoned.contains(&id) {
                return Ok(());
            }
            let fingerprint = running.fingerprint;
            let Some(entry) = plans.get_mut(&fingerprint) else {
                return Ok(());
            };
            if entry.results.contains_key(&id) {
                return Ok(()); // duplicate: first result wins, as everywhere
            }
            journal.append(&JournalRecord::Result {
                fingerprint,
                result: Box::new(result.clone()),
            })?;
            entry.results.insert(id, result);
        }
        self.check_plan_complete();
        Ok(())
    }

    /// Records a strike against `job`; abandons it at the limit.
    fn handle_job_failed(&mut self, worker: WorkerId, job: u64, detail: &str) {
        if self.running.is_none() {
            return;
        }
        eprintln!(
            "fleet daemon: job {job} failed on worker {}: {detail}",
            self.workers.get(&worker).map_or("?", |c| c.name.as_str()),
        );
        let abandoned = {
            let Daemon {
                running,
                plans,
                config,
                ..
            } = self;
            let running = running.as_mut().expect("checked above");
            for fl in running.inflight.values_mut() {
                if fl.worker == worker {
                    fl.remaining.remove(&job);
                }
            }
            let strikes = running.failures.entry(job).or_insert(0);
            *strikes += 1;
            if *strikes >= config.max_job_failures.max(1) {
                eprintln!("fleet daemon: abandoning job {job} after {strikes} strike(s)");
                running.abandoned.insert(job);
                for batch in &mut running.pending {
                    batch.retain(|j| j.id.0 != job);
                }
                running.pending.retain(|batch| !batch.is_empty());
                true
            } else {
                if let Some(j) = plans
                    .get(&running.fingerprint)
                    .and_then(|e| e.jobs.iter().find(|j| j.id.0 == job))
                {
                    // Retry at the back so healthy work drains first.
                    running.pending.push_back(vec![j.clone()]);
                }
                false
            }
        };
        if abandoned {
            self.check_plan_complete();
        }
        self.dispatch_idle();
    }

    /// Completes the running plan once every job is credited or abandoned.
    fn check_plan_complete(&mut self) {
        let done = match &self.running {
            Some(running) => {
                let entry = self.plans.get(&running.fingerprint);
                entry.is_some_and(|entry| {
                    entry.results.len() + running.abandoned.len() >= running.total
                })
            }
            None => false,
        };
        if !done {
            return;
        }
        let running = self.running.take().expect("checked above");
        if let Err(e) = self.journal.append(&JournalRecord::Completed {
            fingerprint: running.fingerprint,
        }) {
            // An unwritable journal is fatal for durability but not for
            // this plan's in-memory results; scream and serve on.
            eprintln!("fleet daemon: journal append failed: {e}");
        }
        if let Some(entry) = self.plans.get_mut(&running.fingerprint) {
            entry.state = PlanState::Completed;
            entry.lease = Instant::now();
        }
        self.stats.plans_completed += 1;
        self.note(Counter::PlansCompleted);
        eprintln!(
            "fleet daemon: plan {:#018x} completed ({} abandoned)",
            running.fingerprint,
            running.abandoned.len(),
        );
        self.start_next_plan();
    }

    /// Cancels a plan: journals the record, retires the entry, and frees
    /// its lane slot. Running plans are not cancellable (determinism
    /// makes finishing cheaper than unwinding); the caller reports the
    /// actual resulting state back to the client.
    fn cancel(&mut self, fingerprint: u64) {
        {
            let Daemon { plans, journal, .. } = self;
            let Some(entry) = plans.get_mut(&fingerprint) else {
                return;
            };
            if entry.state != PlanState::Queued {
                return;
            }
            if let Err(e) = journal.append(&JournalRecord::Cancelled { fingerprint }) {
                eprintln!("fleet daemon: journal append failed: {e}");
            }
            entry.state = PlanState::Cancelled;
        }
        self.unqueue(fingerprint);
        self.stats.plans_cancelled += 1;
    }

    /// Lease housekeeping: queued plans with expired leases are
    /// cancelled; completed-but-unfetched plans are released. Running
    /// plans always finish.
    fn expire_leases(&mut self) {
        let expired: Vec<(u64, PlanState)> = self
            .plans
            .iter()
            .filter(|(_, e)| e.lease.elapsed() > self.config.lease)
            .filter(|(_, e)| match e.state {
                PlanState::Queued => true,
                PlanState::Completed => !e.fetched,
                _ => false,
            })
            .map(|(&f, e)| (f, e.state))
            .collect();
        for (fingerprint, state) in expired {
            self.stats.lease_expiries += 1;
            self.note(Counter::LeaseExpiries);
            match state {
                PlanState::Queued => {
                    eprintln!(
                        "fleet daemon: lease expired on queued plan {fingerprint:#018x}; \
                         cancelling"
                    );
                    self.cancel(fingerprint);
                }
                _ => {
                    eprintln!(
                        "fleet daemon: lease expired on completed plan {fingerprint:#018x}; \
                         releasing results"
                    );
                    if let Err(e) = self.journal.append(&JournalRecord::Fetched { fingerprint }) {
                        eprintln!("fleet daemon: journal append failed: {e}");
                    }
                    if let Some(entry) = self.plans.get_mut(&fingerprint) {
                        entry.fetched = true;
                    }
                }
            }
        }
    }

    /// Handles one client request frame, writing the reply directly to
    /// the client's socket (best-effort: a dead client just retries).
    fn handle_client_frame(&mut self, id: u64, frame: Frame) -> Result<(), DaemonError> {
        let client_name = match self.clients.get(&id) {
            Some(c) => c.name.clone(),
            None => return Ok(()),
        };
        let reply = match frame {
            Frame::Submit {
                fingerprint,
                options,
                jobs,
            } => {
                let known_state = self.plans.get_mut(&fingerprint).map(|entry| {
                    entry.lease = Instant::now();
                    entry.state
                });
                if let Some(state) = known_state {
                    self.stats.submits_deduped += 1;
                    self.note(Counter::SubmitsDeduped);
                    Frame::Accepted {
                        fingerprint,
                        deduped: true,
                        position: match state {
                            PlanState::Queued => self.queued_count().saturating_sub(1) as u32,
                            _ => 0,
                        },
                    }
                } else if self.draining || self.queued_count() >= self.config.max_queue {
                    self.stats.submits_shed += 1;
                    self.note(Counter::SubmitsShed);
                    Frame::Busy {
                        queue_limit: if self.draining {
                            0
                        } else {
                            self.config.max_queue as u32
                        },
                    }
                } else {
                    self.journal.append(&JournalRecord::Submitted {
                        fingerprint,
                        client: client_name.clone(),
                        options,
                        jobs: jobs.clone(),
                    })?;
                    let position = self.queued_count() as u32;
                    self.plans.insert(
                        fingerprint,
                        PlanEntry {
                            client: client_name.clone(),
                            options,
                            jobs,
                            results: BTreeMap::new(),
                            state: PlanState::Queued,
                            fetched: false,
                            lease: Instant::now(),
                        },
                    );
                    self.enqueue(&client_name, fingerprint);
                    self.stats.plans_admitted += 1;
                    self.note(Counter::PlanSubmits);
                    self.start_next_plan();
                    Frame::Accepted {
                        fingerprint,
                        deduped: false,
                        position,
                    }
                }
            }
            Frame::Status { fingerprint } => self.status_report(fingerprint),
            Frame::Cancel { fingerprint } => {
                self.cancel(fingerprint);
                self.status_report(fingerprint)
            }
            Frame::FetchResults { fingerprint } => {
                let ready = self.plans.get_mut(&fingerprint).is_some_and(|entry| {
                    if entry.state == PlanState::Completed {
                        entry.lease = Instant::now();
                        true
                    } else {
                        false
                    }
                });
                if ready {
                    let Daemon { plans, journal, .. } = &mut *self;
                    let entry = plans.get_mut(&fingerprint).expect("checked above");
                    if !entry.fetched {
                        journal.append(&JournalRecord::Fetched { fingerprint })?;
                        entry.fetched = true;
                    }
                    Frame::Results {
                        fingerprint,
                        results: entry.results.values().cloned().collect(),
                    }
                } else {
                    // Not done yet (or unknown): report where it stands
                    // so the client keeps polling instead of misreading
                    // an empty result set as a finished sweep.
                    self.status_report(fingerprint)
                }
            }
            Frame::Drain => {
                if !self.draining {
                    self.draining = true;
                    self.note(Counter::DrainRequests);
                    eprintln!(
                        "fleet daemon: drain requested; {} plan(s) to finish",
                        self.queued_count() + usize::from(self.running.is_some()),
                    );
                }
                Frame::DrainAck {
                    queued: (self.queued_count() + usize::from(self.running.is_some())) as u32,
                }
            }
            // Anything else on a client session is a protocol violation;
            // ignore rather than trust.
            _ => return Ok(()),
        };
        if let Some(conn) = self.clients.get_mut(&id) {
            let _ = wire::write_frame(&mut conn.writer, &reply);
        }
        Ok(())
    }

    fn status_report(&mut self, fingerprint: u64) -> Frame {
        match self.plans.get_mut(&fingerprint) {
            Some(entry) => {
                entry.lease = Instant::now();
                Frame::StatusReport {
                    fingerprint,
                    state: entry.state,
                    completed: entry.results.len() as u64,
                    total: entry.jobs.len() as u64,
                }
            }
            None => Frame::StatusReport {
                fingerprint,
                state: PlanState::Unknown,
                completed: 0,
                total: 0,
            },
        }
    }

    fn shutdown_workers(&mut self) {
        for conn in self.workers.values_mut() {
            let _ = wire::write_frame(&mut conn.writer, &Frame::Shutdown);
        }
        self.workers.clear();
    }
}

/// Runs the daemon until a client drains it; see the module docs.
///
/// # Errors
///
/// See [`DaemonError`]: startup failures (bind, journal replay, worker
/// binary) and unrecoverable journal appends on the admission path.
pub fn run_daemon(config: &DaemonConfig) -> Result<DaemonReport, DaemonError> {
    let telemetry = config.telemetry.then(|| Arc::new(Registry::new()));
    let mut stats = DaemonStats::default();

    // --- journal replay: the restart path. -----------------------------
    let (journal_writer, recovered) = if config.journal.exists() {
        let records = journal::load(&config.journal)?;
        let plans = journal::replay(&records);
        if let Some(reg) = &telemetry {
            reg.inc(Counter::JournalReplays);
        }
        let live: Vec<JournalRecord> = plans
            .iter()
            .filter(|p| p.live())
            .flat_map(journal::ReplayedPlan::to_records)
            .collect();
        let writer = JournalWriter::resume(&config.journal, &live)?;
        let live_plans: Vec<journal::ReplayedPlan> = plans
            .into_iter()
            .filter(journal::ReplayedPlan::live)
            .collect();
        stats.plans_replayed = live_plans.len();
        stats.resumed_results = live_plans.iter().map(|p| p.results.len()).sum();
        eprintln!(
            "fleet daemon: journal replayed — {} live plan(s), {} journaled result(s)",
            stats.plans_replayed, stats.resumed_results,
        );
        (writer, live_plans)
    } else {
        (JournalWriter::create(&config.journal)?, Vec::new())
    };

    let mut daemon = Daemon {
        config: config.clone(),
        plans: BTreeMap::new(),
        lanes: Vec::new(),
        rr_next: 0,
        running: None,
        workers: BTreeMap::new(),
        clients: BTreeMap::new(),
        journal: journal_writer,
        draining: false,
        stats,
        telemetry: telemetry.clone(),
        worker_metrics: BTreeMap::new(),
        next_batch: 0,
    };

    // Re-admit recovered plans in their journaled submission order:
    // completed-but-unfetched plans go straight to the fetch index,
    // everything else requeues (with its journaled results credited, so
    // only the remainder re-executes).
    for plan in recovered {
        let state = if plan.completed {
            PlanState::Completed
        } else {
            PlanState::Queued
        };
        daemon.plans.insert(
            plan.fingerprint,
            PlanEntry {
                client: plan.client.clone(),
                options: plan.options,
                jobs: plan.jobs,
                results: plan.results.into_iter().map(|r| (r.job.id.0, r)).collect(),
                state,
                fetched: false,
                lease: Instant::now(),
            },
        );
        if state == PlanState::Queued {
            daemon.enqueue(&plan.client, plan.fingerprint);
        }
    }

    // --- plumbing: listener, session threads, spawned workers. ---------
    // A daemon restarted right after a crash can race its predecessor's
    // half-closed sockets out of TIME_WAIT on the same port; retry the
    // bind briefly instead of refusing to come back up.
    let listener = {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match TcpListener::bind(&config.listen) {
                Ok(l) => break l,
                Err(e)
                    if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline =>
                {
                    std::thread::sleep(Duration::from_millis(250));
                }
                Err(e) => {
                    return Err(DaemonError::Io(format!("binding {}: {e}", config.listen)));
                }
            }
        }
    };
    let bound = listener
        .local_addr()
        .map_err(|e| DaemonError::Io(format!("local_addr: {e}")))?;
    let local_addr = coord::routable_addr(bound);
    eprintln!(
        "fleet daemon: serving on {local_addr}, journal {}",
        config.journal.display()
    );

    let (events_tx, events_rx) = mpsc::channel::<Event>();
    let stop = Arc::new(AtomicBool::new(false));
    let draining_flag = Arc::new(AtomicBool::new(false));
    {
        let events_tx = events_tx.clone();
        let stop = Arc::clone(&stop);
        let draining_flag = Arc::clone(&draining_flag);
        let registry = telemetry.clone();
        let telemetry_on = config.telemetry;
        let listener = listener
            .try_clone()
            .map_err(|e| DaemonError::Io(format!("cloning listener: {e}")))?;
        std::thread::spawn(move || {
            let mut next_id: u64 = 0;
            loop {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let id = next_id;
                next_id += 1;
                let events_tx = events_tx.clone();
                let registry = registry.clone();
                let draining_flag = Arc::clone(&draining_flag);
                std::thread::spawn(move || {
                    serve_session(
                        stream,
                        id,
                        telemetry_on,
                        &draining_flag,
                        registry,
                        &events_tx,
                    );
                });
            }
        });
    }

    let binary = if config.spawn_workers > 0 {
        match &config.worker_binary {
            Some(path) => Some(path.clone()),
            None => Some(coord::default_worker_binary().map_err(DaemonError::WorkerBinary)?),
        }
    } else {
        None
    };
    let mut children: Vec<ChildSlot> = Vec::new();
    let mut spawned_total = 0usize;
    for _ in 0..config.spawn_workers {
        let name = format!("daemon-worker-{spawned_total}");
        let child = coord::spawn_worker(
            binary.as_ref().expect("binary resolved when spawning"),
            &local_addr,
            &name,
            &[],
        )?;
        children.push(ChildSlot {
            name,
            child,
            exited: false,
        });
        spawned_total += 1;
    }

    // --- the service loop. ---------------------------------------------
    let mut respawn_queue = 0usize;
    let mut respawn_backoff = RESPAWN_BACKOFF_FLOOR;
    let mut next_respawn_at = Instant::now();
    daemon.start_next_plan();
    let result: Result<(), DaemonError> = loop {
        if daemon.draining && daemon.running.is_none() && daemon.queued_count() == 0 {
            break Ok(());
        }
        match events_rx.recv_timeout(Duration::from_millis(200)) {
            Ok(Event::WorkerConnected {
                id,
                writer,
                spawned,
                name,
            }) => {
                daemon.stats.workers_connected += 1;
                daemon.note(Counter::WorkersConnected);
                daemon.workers.insert(
                    id,
                    WorkerConn {
                        writer,
                        name,
                        spawned,
                        busy: None,
                        last_seen: Instant::now(),
                    },
                );
                daemon.dispatch(id);
            }
            Ok(Event::ClientConnected { id, writer, name }) => {
                daemon.clients.insert(id, ClientConn { writer, name });
            }
            Ok(Event::Frame { id, frame }) => {
                if daemon.clients.contains_key(&id) {
                    if let Err(e) = daemon.handle_client_frame(id, frame) {
                        break Err(e);
                    }
                } else {
                    if let Some(conn) = daemon.workers.get_mut(&id) {
                        conn.last_seen = Instant::now();
                    }
                    match frame {
                        Frame::Heartbeat => {
                            if let Some(conn) = daemon.workers.get_mut(&id) {
                                let _ = wire::write_frame(&mut conn.writer, &Frame::Heartbeat);
                            }
                        }
                        Frame::Metrics { snapshot } => {
                            daemon.worker_metrics.insert(id, *snapshot);
                        }
                        Frame::Result { result } => {
                            if let Err(e) = daemon.handle_result(*result) {
                                break Err(e);
                            }
                        }
                        Frame::JobFailed { job, error } => {
                            daemon.handle_job_failed(id, job, &error.to_string());
                        }
                        Frame::BatchDone { batch } => {
                            if let Some(conn) = daemon.workers.get_mut(&id) {
                                if conn.busy == Some(batch) {
                                    conn.busy = None;
                                }
                            }
                            if let Some(running) = &mut daemon.running {
                                if let Some(fl) = running.inflight.remove(&batch) {
                                    if !fl.remaining.is_empty() {
                                        running
                                            .pending
                                            .push_front(fl.remaining.into_values().collect());
                                    }
                                }
                            }
                            daemon.dispatch(id);
                        }
                        _ => {}
                    }
                }
            }
            Ok(Event::Disconnected { id }) => {
                if daemon.clients.remove(&id).is_none() {
                    daemon.lose_worker(id);
                    daemon.dispatch_idle();
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(DaemonError::Io("event channel closed".into()));
            }
        }

        // Housekeeping on every iteration.
        draining_flag.store(daemon.draining, Ordering::SeqCst);
        daemon.expire_leases();
        let timed_out: Vec<u64> = daemon
            .workers
            .iter()
            .filter(|(_, c)| c.last_seen.elapsed() > config.heartbeat_timeout)
            .map(|(&id, _)| id)
            .collect();
        for worker in timed_out {
            daemon.lose_worker(worker);
        }
        for slot in &mut children {
            if slot.exited {
                continue;
            }
            if let Ok(Some(_)) = slot.child.try_wait() {
                slot.exited = true;
                if !daemon.draining {
                    respawn_queue += 1;
                }
            }
        }
        // Respawn crashed spawned workers with bounded backoff — a
        // daemon is a service, so the budget is its lifetime.
        while respawn_queue > 0 && !daemon.draining && Instant::now() >= next_respawn_at {
            let name = format!("daemon-worker-{spawned_total}");
            match coord::spawn_worker(
                binary.as_ref().expect("respawn implies spawned workers"),
                &local_addr,
                &name,
                &[],
            ) {
                Ok(child) => {
                    spawned_total += 1;
                    respawn_queue -= 1;
                    respawn_backoff = RESPAWN_BACKOFF_FLOOR;
                    daemon.stats.workers_respawned += 1;
                    children.push(ChildSlot {
                        name,
                        child,
                        exited: false,
                    });
                }
                Err(e) => {
                    next_respawn_at = Instant::now() + respawn_backoff;
                    eprintln!(
                        "fleet daemon: respawn failed (retrying in {respawn_backoff:?}): {e}"
                    );
                    respawn_backoff = (respawn_backoff * 2).min(RESPAWN_BACKOFF_CEIL);
                    break;
                }
            }
        }
        daemon.start_next_plan();
        daemon.dispatch_idle();

        if let Some(reg) = &daemon.telemetry {
            reg.set_gauge(Gauge::QueuedPlans, daemon.queued_count() as u64);
            reg.set_gauge(Gauge::LiveWorkers, daemon.workers.len() as u64);
            reg.set_gauge(
                Gauge::InflightBatches,
                daemon
                    .running
                    .as_ref()
                    .map_or(0, |r| r.inflight.len() as u64),
            );
        }
    };

    // Teardown: drain complete (or fatal error). Flush is implicit — the
    // journal flushes per record — so the only work left is the fleet.
    daemon.shutdown_workers();
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(&local_addr);
    coord::reap_children(&mut children);
    result?;
    eprintln!(
        "fleet daemon: drained cleanly ({} plan(s) completed over the service lifetime)",
        daemon.stats.plans_completed,
    );
    let telemetry = telemetry.as_ref().map(|reg| {
        let mut folded = reg.snapshot();
        for snap in daemon.worker_metrics.values() {
            folded.merge(snap);
        }
        folded
    });
    Ok(DaemonReport {
        stats: daemon.stats,
        telemetry,
    })
}

/// Per-connection thread: discriminate worker vs client on the first
/// frame, handshake accordingly, then pump frames into the event channel
/// until the socket dies.
fn serve_session(
    mut stream: TcpStream,
    id: u64,
    telemetry: bool,
    draining: &AtomicBool,
    registry: Option<Arc<Registry>>,
    events: &mpsc::Sender<Event>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let connected = match wire::read_frame(&mut stream) {
        Ok(Frame::Hello {
            version,
            spawned,
            name,
        }) => {
            if version != PROTOCOL_VERSION {
                let _ = wire::write_frame(
                    &mut stream,
                    &Frame::Reject {
                        reason: format!("protocol version {version} != daemon {PROTOCOL_VERSION}"),
                    },
                );
                return;
            }
            if wire::write_frame(
                &mut stream,
                &Frame::Welcome {
                    version: PROTOCOL_VERSION,
                    telemetry,
                },
            )
            .is_err()
            {
                return;
            }
            let Ok(writer) = stream.try_clone() else {
                return;
            };
            Event::WorkerConnected {
                id,
                writer,
                spawned,
                name,
            }
        }
        Ok(Frame::ClientHello { version, client }) => {
            if version != PROTOCOL_VERSION {
                let _ = wire::write_frame(
                    &mut stream,
                    &Frame::Reject {
                        reason: format!("protocol version {version} != daemon {PROTOCOL_VERSION}"),
                    },
                );
                return;
            }
            if wire::write_frame(
                &mut stream,
                &Frame::ClientWelcome {
                    version: PROTOCOL_VERSION,
                    draining: draining.load(Ordering::SeqCst),
                },
            )
            .is_err()
            {
                return;
            }
            let Ok(writer) = stream.try_clone() else {
                return;
            };
            Event::ClientConnected {
                id,
                writer,
                name: client,
            }
        }
        _ => return, // neither handshake: drop silently
    };
    let _ = stream.set_read_timeout(None);
    if events.send(connected).is_err() {
        return;
    }
    loop {
        match wire::read_frame_recorded(&mut stream, registry.as_deref()) {
            Ok(frame) => {
                if events.send(Event::Frame { id, frame }).is_err() {
                    return;
                }
            }
            Err(_) => {
                let _ = events.send(Event::Disconnected { id });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_lanes_interleave_clients() {
        let mut daemon = Daemon {
            config: DaemonConfig::default(),
            plans: BTreeMap::new(),
            lanes: Vec::new(),
            rr_next: 0,
            running: None,
            workers: BTreeMap::new(),
            clients: BTreeMap::new(),
            journal: JournalWriter::create(&tmp("rr")).expect("journal"),
            draining: false,
            stats: DaemonStats::default(),
            telemetry: None,
            worker_metrics: BTreeMap::new(),
            next_batch: 0,
        };
        // Client a floods three plans; client b submits one.
        daemon.enqueue("a", 1);
        daemon.enqueue("a", 2);
        daemon.enqueue("a", 3);
        daemon.enqueue("b", 10);
        let order: Vec<u64> = std::iter::from_fn(|| daemon.next_plan()).collect();
        assert_eq!(
            order,
            vec![1, 10, 2, 3],
            "b's plan must not wait behind all of a's"
        );
        let _ = std::fs::remove_file(tmp("rr"));
    }

    #[test]
    fn unqueue_frees_a_cancelled_plans_slot() {
        let mut daemon = Daemon {
            config: DaemonConfig::default(),
            plans: BTreeMap::new(),
            lanes: Vec::new(),
            rr_next: 0,
            running: None,
            workers: BTreeMap::new(),
            clients: BTreeMap::new(),
            journal: JournalWriter::create(&tmp("unq")).expect("journal"),
            draining: false,
            stats: DaemonStats::default(),
            telemetry: None,
            worker_metrics: BTreeMap::new(),
            next_batch: 0,
        };
        daemon.enqueue("a", 1);
        daemon.enqueue("a", 2);
        assert_eq!(daemon.queued_count(), 2);
        daemon.unqueue(1);
        assert_eq!(daemon.queued_count(), 1);
        assert_eq!(daemon.next_plan(), Some(2));
        let _ = std::fs::remove_file(tmp("unq"));
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "zhuyi-daemon-test-{tag}-{}.journal",
            std::process::id()
        ))
    }
}
