//! The poisoned-job quarantine manifest: which jobs a distributed sweep
//! gave up on, and every recorded strike against them.
//!
//! Quarantine is the coordinator's graceful-degradation contract: a job
//! that keeps failing (K strikes — contained panics, expired deadlines)
//! is pulled out of the schedule instead of wedging or aborting the
//! sweep. The sweep then *completes*, the main CSV/JSON exports carry
//! only trustworthy completed jobs (byte-identical to a single-process
//! run over the same surviving set), and the quarantined remainder is
//! reported here — printed after the stats and exported as a sibling
//! `*.quarantine.csv` / `*.quarantine.json` artifact so automation can
//! assert it is empty on a clean pass.

use zhuyi_bench::Table;
use zhuyi_fleet::SweepJob;

use crate::wire::JobError;

/// One quarantined job plus the strikes that condemned it, in the order
/// they were recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// The job the sweep gave up on.
    pub job: SweepJob,
    /// Every recorded failure, oldest first; its length is exactly the
    /// configured strike limit.
    pub strikes: Vec<JobError>,
}

/// The full quarantine ledger of one distributed sweep, job-id ordered.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuarantineManifest {
    entries: Vec<QuarantineEntry>,
}

impl QuarantineManifest {
    /// Builds a manifest, sorting entries into job-id order so exports
    /// are deterministic regardless of quarantine timing.
    pub fn new(mut entries: Vec<QuarantineEntry>) -> Self {
        entries.sort_by_key(|e| e.job.id.0);
        Self { entries }
    }

    /// The entries, ascending by job id.
    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }

    /// Number of quarantined jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was quarantined — the clean-pass invariant CI
    /// asserts on.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One row per quarantined job.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(["job", "scenario", "seed", "kind", "strikes", "errors"]);
        for entry in &self.entries {
            let job = &entry.job;
            let kinds: Vec<&str> = entry.strikes.iter().map(|s| s.kind.name()).collect();
            let last = entry
                .strikes
                .last()
                .map_or_else(String::new, |s| sanitize(&s.detail));
            table.row(vec![
                job.id.0.to_string(),
                job.spec.scenario.name().to_string(),
                job.spec.seed.to_string(),
                job.spec.kind.name().to_string(),
                entry.strikes.len().to_string(),
                format!("{} | {last}", kinds.join(";")),
            ]);
        }
        table
    }

    /// The manifest as CSV (header always present, so an empty manifest
    /// is a header-only file automation can diff against).
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// The manifest as a JSON document with per-strike details.
    ///
    /// Hand-rolled like every export in the workspace (the vendored
    /// serde is a no-op shim); field order fixed, byte-deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"quarantined\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"job\": {}, \"scenario\": {}, \"seed\": {}, \"kind\": {}, \"strikes\": [",
                entry.job.id.0,
                json_str(entry.job.spec.scenario.name()),
                entry.job.spec.seed,
                json_str(entry.job.spec.kind.name()),
            ));
            for (j, strike) in entry.strikes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"kind\": {}, \"detail\": {}}}",
                    json_str(strike.kind.name()),
                    json_str(&sanitize(&strike.detail)),
                ));
            }
            out.push_str("]}");
        }
        if self.entries.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

/// Flattens a failure detail (panic messages span lines) to one bounded
/// line so CSV rows and log lines stay intact.
fn sanitize(detail: &str) -> String {
    let mut flat: String = detail
        .chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect();
    if flat.len() > 200 {
        let mut cut = 200;
        while !flat.is_char_boundary(cut) {
            cut -= 1;
        }
        flat.truncate(cut);
        flat.push_str("...");
    }
    flat
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::JobErrorKind;
    use av_scenarios::catalog::ScenarioId;
    use zhuyi_fleet::{JobId, JobKind, JobSpec, RateSpec};

    fn entry(id: u64, strikes: usize) -> QuarantineEntry {
        QuarantineEntry {
            job: SweepJob {
                id: JobId(id),
                spec: JobSpec {
                    scenario: ScenarioId::CutOut.into(),
                    seed: 3,
                    kind: JobKind::Probe {
                        plan: RateSpec::Uniform(4.0),
                        keep_trace: false,
                    },
                },
            },
            strikes: (0..strikes)
                .map(|k| JobError {
                    kind: JobErrorKind::Panic,
                    detail: format!("strike {k}:\nmulti-line, \"quoted\""),
                })
                .collect(),
        }
    }

    #[test]
    fn manifest_orders_entries_by_job_id() {
        let manifest = QuarantineManifest::new(vec![entry(9, 1), entry(2, 3)]);
        let ids: Vec<u64> = manifest.entries().iter().map(|e| e.job.id.0).collect();
        assert_eq!(ids, vec![2, 9]);
        assert_eq!(manifest.len(), 2);
        assert!(!manifest.is_empty());
    }

    #[test]
    fn empty_manifest_exports_are_header_only() {
        let manifest = QuarantineManifest::default();
        assert!(manifest.is_empty());
        assert_eq!(manifest.to_csv(), "job,scenario,seed,kind,strikes,errors\n");
        assert_eq!(manifest.to_json(), "{\n  \"quarantined\": []\n}\n");
    }

    #[test]
    fn exports_flatten_multiline_panic_details() {
        let manifest = QuarantineManifest::new(vec![entry(5, 3)]);
        let csv = manifest.to_csv();
        assert_eq!(csv.lines().count(), 2, "header + one row: {csv}");
        assert!(csv.contains("panic;panic;panic"));
        let json = manifest.to_json();
        assert!(json.contains("\"strikes\": [{\"kind\": \"panic\""));
        assert!(!json.contains("strike 0:\n"), "details must be flattened");
        // Deterministic: same manifest, same bytes.
        assert_eq!(
            manifest.to_json(),
            QuarantineManifest::new(vec![entry(5, 3)]).to_json()
        );
    }
}
