//! Deterministic fault injection for the worker→coordinator stream and
//! the client→daemon submit link.
//!
//! Chaos testing is only useful if a failing run can be replayed: every
//! fault decision here is a **pure function of `(seed, frame_index)`** —
//! no clocks, no OS randomness — so a chaos run with a pinned seed
//! injects byte-for-byte the same faults every time, on every machine.
//!
//! [`FaultTransport`] wraps a worker's outbound byte stream and, per
//! data frame, either delivers it intact or applies one
//! [`FaultAction`]: drop, duplicate, delay, truncate mid-frame, or flip
//! one payload bit. Rates come from a named [`ChaosProfile`]
//! (`--chaos-profile`), the decision stream from `--chaos-seed`.
//!
//! Two exemptions keep chaos runs *terminating* without weakening what
//! they test:
//!
//! - [`Frame::Heartbeat`] is never faulted (and never advances the fault
//!   index). Losing heartbeats only tests the liveness timeout — already
//!   covered directly — while making every chaos run flaky.
//! - [`Frame::BatchDone`] is never dropped or duplicated (truncation,
//!   corruption, and delay still apply). A silently vanished BatchDone
//!   would strand the batch's defensive requeue until the *connection*
//!   died, turning a lossy link into a stall instead of recovered work.
//!
//! Dropped results are recovered by the coordinator's BatchDone
//! defensive requeue; truncated frames kill the connection (the
//! transport refuses further writes, the worker exits, the coordinator
//! requeues and respawns); bit-flips are caught by the wire v4 frame
//! checksum and likewise surface as a dead connection — never as a
//! wrong result.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use crate::wire::{self, Frame, WireError};
use zhuyi_telemetry::{Counter, Registry};

/// Per-frame fault rates, in **per-mille** (so profiles stay integral
/// and hash-derived rolls need no floating point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Name accepted by `--chaos-profile`.
    pub name: &'static str,
    /// Chance a droppable frame (Result / JobFailed) vanishes.
    pub drop_per_mille: u32,
    /// Chance a droppable frame is sent twice.
    pub duplicate_per_mille: u32,
    /// Chance a frame is delayed before sending.
    pub delay_per_mille: u32,
    /// Upper bound on an injected delay.
    pub max_delay_ms: u64,
    /// Chance the frame is cut mid-bytes (kills the connection).
    pub truncate_per_mille: u32,
    /// Chance one payload bit is flipped (caught by the frame checksum).
    pub bitflip_per_mille: u32,
}

/// The named profiles accepted by `--chaos-profile`.
pub const PROFILES: &[ChaosProfile] = &[
    ChaosProfile {
        name: "mild",
        drop_per_mille: 15,
        duplicate_per_mille: 10,
        delay_per_mille: 30,
        max_delay_ms: 150,
        truncate_per_mille: 4,
        bitflip_per_mille: 4,
    },
    ChaosProfile {
        name: "storm",
        drop_per_mille: 80,
        duplicate_per_mille: 60,
        delay_per_mille: 80,
        max_delay_ms: 300,
        truncate_per_mille: 20,
        bitflip_per_mille: 20,
    },
    ChaosProfile {
        name: "drops",
        drop_per_mille: 250,
        duplicate_per_mille: 0,
        delay_per_mille: 0,
        max_delay_ms: 0,
        truncate_per_mille: 0,
        bitflip_per_mille: 0,
    },
    ChaosProfile {
        name: "corrupt",
        drop_per_mille: 0,
        duplicate_per_mille: 0,
        delay_per_mille: 0,
        max_delay_ms: 0,
        truncate_per_mille: 30,
        bitflip_per_mille: 60,
    },
];

/// Looks up a [`ChaosProfile`] by its `--chaos-profile` name.
pub fn profile(name: &str) -> Option<&'static ChaosProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// A chaos configuration: which profile, under which seed.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Base seed for the deterministic fault stream.
    pub seed: u64,
    /// The fault-rate profile.
    pub profile: &'static ChaosProfile,
}

/// What happens to one outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Send intact.
    Deliver,
    /// Never send (the frame vanishes).
    Drop,
    /// Send the same frame twice.
    Duplicate,
    /// Sleep, then send intact.
    Delay(Duration),
    /// Send only a prefix of the framed bytes, then refuse all further
    /// writes — the stream is desynchronized beyond recovery.
    Truncate {
        /// Per-mille of the framed bytes to keep (clamped to at least
        /// one byte and strictly less than the whole frame).
        keep_per_mille: u32,
    },
    /// Flip one payload bit (the checksum header stays the original's,
    /// so the receiver detects the corruption).
    BitFlip {
        /// Entropy used to pick the flipped bit, `entropy % payload_bits`.
        entropy: u64,
    },
}

/// SplitMix64 — the standard 64-bit finalizing mixer; one application
/// per decision keeps the fault stream well distributed without state.
/// Also used by the coordinator's duplicate-execution sampling.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the per-worker chaos seed the coordinator hands to spawned
/// worker `index` from the sweep-level `--chaos-seed`, so each worker
/// sees an independent but replayable fault stream.
pub fn derive_worker_seed(base: u64, index: u64) -> u64 {
    splitmix64(base ^ splitmix64(index.wrapping_add(1)))
}

/// Decides the fault for frame number `frame_index` under `(profile,
/// seed)` — a pure function, the heart of replayability. `droppable`
/// gates the drop/duplicate rates (see the module docs for why
/// `BatchDone` must arrive exactly once if the connection lives).
pub fn fault_for(
    profile: &ChaosProfile,
    seed: u64,
    frame_index: u64,
    droppable: bool,
) -> FaultAction {
    let mixed = splitmix64(seed ^ splitmix64(frame_index));
    let roll = (mixed % 1000) as u32;
    let entropy = splitmix64(mixed);
    let mut threshold = 0;
    if droppable {
        threshold += profile.drop_per_mille;
        if roll < threshold {
            return FaultAction::Drop;
        }
        threshold += profile.duplicate_per_mille;
        if roll < threshold {
            return FaultAction::Duplicate;
        }
    }
    threshold += profile.delay_per_mille;
    if roll < threshold {
        let ms = if profile.max_delay_ms == 0 {
            0
        } else {
            entropy % profile.max_delay_ms
        };
        return FaultAction::Delay(Duration::from_millis(ms));
    }
    threshold += profile.truncate_per_mille;
    if roll < threshold {
        return FaultAction::Truncate {
            keep_per_mille: (entropy % 1000) as u32,
        };
    }
    threshold += profile.bitflip_per_mille;
    if roll < threshold {
        return FaultAction::BitFlip { entropy };
    }
    FaultAction::Deliver
}

/// A frame writer that injects deterministic faults. Wraps the worker's
/// outbound stream; with no chaos configured it is a zero-overhead
/// passthrough to [`wire::write_frame`].
#[derive(Debug)]
pub struct FaultTransport<W: Write> {
    inner: W,
    chaos: Option<ChaosSpec>,
    frame_index: u64,
    dead: bool,
    telemetry: Option<Arc<Registry>>,
}

impl<W: Write> FaultTransport<W> {
    /// A faultless passthrough transport.
    pub fn plain(inner: W) -> Self {
        Self {
            inner,
            chaos: None,
            frame_index: 0,
            dead: false,
            telemetry: None,
        }
    }

    /// A transport injecting `spec`'s fault stream.
    pub fn chaotic(inner: W, spec: ChaosSpec) -> Self {
        Self {
            inner,
            chaos: Some(spec),
            frame_index: 0,
            dead: false,
            telemetry: None,
        }
    }

    /// Attaches a telemetry registry: every delivered frame is accounted
    /// by kind and payload bytes, and every injected fault bumps the
    /// chaos-injection counter. The transport is shared across the
    /// worker's main and heartbeat threads (under the caller's mutex),
    /// so it records into an explicit `Arc`, not the thread-local
    /// binding.
    pub fn set_telemetry(&mut self, registry: Arc<Registry>) {
        self.telemetry = Some(registry);
    }

    fn note_sent(&self, frame: &Frame, payload_len: usize) {
        if let Some(reg) = &self.telemetry {
            reg.wire_sent(wire::frame_kind(frame), payload_len as u64);
        }
    }

    fn note_injection(&self) {
        if let Some(reg) = &self.telemetry {
            reg.inc(Counter::ChaosInjections);
        }
    }

    /// Sends one frame, applying this transport's fault stream.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on stream failure, or on any send after an
    /// injected truncation (the stream is desynchronized; the caller
    /// must treat the connection as lost).
    pub fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        if self.dead {
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "chaos: stream desynchronized by an earlier truncated frame",
            )));
        }
        let payload = wire::encode_frame(frame);
        let spec = match self.chaos {
            Some(spec) if !matches!(frame, Frame::Heartbeat) => spec,
            _ => {
                self.note_sent(frame, payload.len());
                return wire::write_payload(&mut self.inner, &payload);
            }
        };
        // Worker uplink: results and failures are droppable (recovered by
        // the BatchDone defensive requeue). Client→daemon requests are
        // droppable too — the client's retry/backoff loop plus the
        // daemon's fingerprint dedup make a vanished request safe, and
        // that recovery path is exactly what chaos must exercise.
        let droppable = matches!(
            frame,
            Frame::Result { .. }
                | Frame::JobFailed { .. }
                | Frame::Submit { .. }
                | Frame::Status { .. }
                | Frame::Cancel { .. }
                | Frame::FetchResults { .. }
                | Frame::Drain
        );
        let action = fault_for(spec.profile, spec.seed, self.frame_index, droppable);
        self.frame_index += 1;
        if action != FaultAction::Deliver {
            self.note_injection();
        }
        match action {
            FaultAction::Deliver => {
                self.note_sent(frame, payload.len());
                wire::write_payload(&mut self.inner, &payload)
            }
            FaultAction::Drop => Ok(()),
            FaultAction::Duplicate => {
                self.note_sent(frame, payload.len());
                self.note_sent(frame, payload.len());
                wire::write_payload(&mut self.inner, &payload)?;
                wire::write_payload(&mut self.inner, &payload)
            }
            FaultAction::Delay(pause) => {
                std::thread::sleep(pause);
                self.note_sent(frame, payload.len());
                wire::write_payload(&mut self.inner, &payload)
            }
            FaultAction::Truncate { keep_per_mille } => {
                let framed = framed_payload(&payload);
                let keep = (framed.len() * keep_per_mille as usize / 1000)
                    .max(1)
                    .min(framed.len() - 1);
                self.inner.write_all(&framed[..keep])?;
                self.inner.flush()?;
                self.dead = true;
                Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    format!(
                        "chaos: frame truncated after {keep} of {} bytes",
                        framed.len()
                    ),
                )))
            }
            FaultAction::BitFlip { entropy } => {
                let mut framed = framed_payload(&payload);
                let payload_bits = (framed.len() as u64 - 8) * 8;
                let bit = entropy % payload_bits;
                framed[8 + (bit / 8) as usize] ^= 1 << (bit % 8);
                self.note_sent(frame, payload.len());
                self.inner.write_all(&framed)?;
                self.inner.flush()?;
                Ok(())
            }
        }
    }
}

/// The exact bytes [`wire::write_frame`] would put on the stream.
#[cfg(test)]
fn framed_bytes(frame: &Frame) -> Vec<u8> {
    framed_payload(&wire::encode_frame(frame))
}

fn framed_payload(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&wire::payload_checksum(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, JobError, JobErrorKind};

    fn storm() -> &'static ChaosProfile {
        profile("storm").expect("storm profile exists")
    }

    fn sample_failed(job: u64) -> Frame {
        Frame::JobFailed {
            job,
            error: JobError {
                kind: JobErrorKind::Panic,
                detail: "boom".into(),
            },
        }
    }

    #[test]
    fn fault_decisions_are_a_pure_function_of_seed_and_index() {
        for index in 0..2000 {
            assert_eq!(
                fault_for(storm(), 0xfeed, index, true),
                fault_for(storm(), 0xfeed, index, true),
            );
        }
        // Different seeds must not replay the same fault stream.
        let a: Vec<_> = (0..500).map(|i| fault_for(storm(), 1, i, true)).collect();
        let b: Vec<_> = (0..500).map(|i| fault_for(storm(), 2, i, true)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn storm_profile_exercises_every_fault_kind() {
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        let mut truncs = 0;
        let mut flips = 0;
        for index in 0..5000 {
            match fault_for(storm(), 7, index, true) {
                FaultAction::Drop => drops += 1,
                FaultAction::Duplicate => dups += 1,
                FaultAction::Delay(_) => delays += 1,
                FaultAction::Truncate { .. } => truncs += 1,
                FaultAction::BitFlip { .. } => flips += 1,
                FaultAction::Deliver => {}
            }
        }
        assert!(drops > 0 && dups > 0 && delays > 0 && truncs > 0 && flips > 0);
    }

    #[test]
    fn non_droppable_frames_are_never_dropped_or_duplicated() {
        for index in 0..5000 {
            let action = fault_for(storm(), 7, index, false);
            assert!(!matches!(
                action,
                FaultAction::Drop | FaultAction::Duplicate
            ));
        }
    }

    #[test]
    fn plain_transport_is_a_passthrough() {
        let mut transport = FaultTransport::plain(Vec::new());
        transport.send(&sample_failed(1)).expect("send");
        let mut cursor = std::io::Cursor::new(transport.inner);
        assert_eq!(read_frame(&mut cursor).expect("read"), sample_failed(1));
    }

    #[test]
    fn heartbeats_bypass_the_fault_stream() {
        // Even a profile that drops everything must deliver heartbeats.
        const ALL_DROP: ChaosProfile = ChaosProfile {
            name: "all-drop",
            drop_per_mille: 1000,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
            truncate_per_mille: 0,
            bitflip_per_mille: 0,
        };
        let mut transport = FaultTransport::chaotic(
            Vec::new(),
            ChaosSpec {
                seed: 3,
                profile: &ALL_DROP,
            },
        );
        for _ in 0..10 {
            transport.send(&Frame::Heartbeat).expect("send");
            transport.send(&sample_failed(5)).expect("dropped silently");
        }
        let mut cursor = std::io::Cursor::new(transport.inner);
        for _ in 0..10 {
            assert_eq!(read_frame(&mut cursor).expect("read"), Frame::Heartbeat);
        }
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Io(_))));
    }

    #[test]
    fn truncation_kills_the_transport_and_the_receiver_sees_garbage() {
        const ALL_TRUNC: ChaosProfile = ChaosProfile {
            name: "all-trunc",
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
            truncate_per_mille: 1000,
            bitflip_per_mille: 0,
        };
        let mut transport = FaultTransport::chaotic(
            Vec::new(),
            ChaosSpec {
                seed: 11,
                profile: &ALL_TRUNC,
            },
        );
        assert!(matches!(
            transport.send(&sample_failed(9)),
            Err(WireError::Io(_))
        ));
        // Every later send is refused: the byte stream is desynchronized.
        assert!(matches!(
            transport.send(&Frame::BatchDone { batch: 0 }),
            Err(WireError::Io(_))
        ));
        // The receiver cannot decode the torn bytes as a clean frame.
        let torn = transport.inner;
        assert!(torn.len() < framed_bytes(&sample_failed(9)).len());
        let mut cursor = std::io::Cursor::new(torn);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn bitflips_are_caught_by_the_frame_checksum() {
        const ALL_FLIP: ChaosProfile = ChaosProfile {
            name: "all-flip",
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
            truncate_per_mille: 0,
            bitflip_per_mille: 1000,
        };
        let mut transport = FaultTransport::chaotic(
            Vec::new(),
            ChaosSpec {
                seed: 13,
                profile: &ALL_FLIP,
            },
        );
        transport.send(&sample_failed(2)).expect("send ok");
        let mut cursor = std::io::Cursor::new(transport.inner);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn duplicates_arrive_twice_and_byte_identical() {
        const ALL_DUP: ChaosProfile = ChaosProfile {
            name: "all-dup",
            drop_per_mille: 0,
            duplicate_per_mille: 1000,
            delay_per_mille: 0,
            max_delay_ms: 0,
            truncate_per_mille: 0,
            bitflip_per_mille: 0,
        };
        let mut transport = FaultTransport::chaotic(
            Vec::new(),
            ChaosSpec {
                seed: 17,
                profile: &ALL_DUP,
            },
        );
        transport.send(&sample_failed(4)).expect("send");
        let mut cursor = std::io::Cursor::new(transport.inner);
        assert_eq!(read_frame(&mut cursor).expect("first"), sample_failed(4));
        assert_eq!(read_frame(&mut cursor).expect("second"), sample_failed(4));
    }

    #[test]
    fn worker_seeds_are_distinct_per_index() {
        let seeds: Vec<u64> = (0..8).map(|k| derive_worker_seed(99, k)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in seeds.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(derive_worker_seed(99, 3), derive_worker_seed(99, 3));
    }

    #[test]
    fn named_profiles_resolve_and_unknown_names_do_not() {
        for p in PROFILES {
            assert_eq!(profile(p.name).expect("known").name, p.name);
        }
        assert!(profile("warp").is_none());
    }
}
