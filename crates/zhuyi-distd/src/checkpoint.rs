//! Crash-safe checkpointing of completed sweep jobs.
//!
//! The coordinator appends every *first* (deduplicated) [`JobResult`] it
//! receives to an on-disk log and flushes per record, so an interrupted
//! distributed sweep resumes without re-simulating finished jobs — and,
//! because exports are rebuilt from the id-ordered union of resumed and
//! fresh results, a resumed sweep still produces **byte-identical** output
//! to an uninterrupted one.
//!
//! # File format (v2)
//!
//! ```text
//! magic   b"ZHUYIDC2"                      (8 bytes)
//! u64-LE  plan fingerprint                 (FNV-1a over the encoded plan
//!                                           jobs + the exec options)
//! records u32-LE length
//!         u32-LE FNV-1a-32 payload checksum  (see `wire::payload_checksum`)
//!         encoded JobResult                  (see `wire::put_job_result`)
//! ```
//!
//! Every record carries its own checksum, so corruption (a flipped bit
//! on disk, a partial overwrite) is *detected*, never silently decoded
//! into a wrong result. A failed checksum or torn record at the exact
//! tail of the file (the coordinator died mid-append) is tolerated and
//! dropped on load; the same damage anywhere earlier is an error — the
//! file as a whole is not trustworthy. The fingerprint pins a checkpoint
//! to one exact (plan, options) pair — resuming a different sweep
//! against it is refused rather than silently merged.

use crate::wire::{self, WireError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use zhuyi_fleet::{ExecOptions, JobResult, SweepPlan};

const MAGIC: &[u8; 8] = b"ZHUYIDC2";

/// Errors raised while writing or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file failed.
    Io(std::io::Error),
    /// The file is not a checkpoint, or a non-tail record is corrupt.
    Corrupt(String),
    /// The checkpoint belongs to a different (plan, options) pair.
    PlanMismatch {
        /// Fingerprint stored in the file.
        found: u64,
        /// Fingerprint of the sweep being resumed.
        expected: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::PlanMismatch { found, expected } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match this sweep \
                 ({expected:#018x}); it records a different plan or options"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a 64-bit over the plan's wire-encoded jobs plus the exec options
/// — the identity a checkpoint is pinned to. Folds one reused per-job
/// buffer into the hash state, so memory stays O(1) in the plan size.
pub fn plan_fingerprint(plan: &SweepPlan, options: ExecOptions) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let fold = |hash: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *hash ^= u64::from(b);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut buf = Vec::with_capacity(64);
    for job in plan.jobs() {
        buf.clear();
        wire::put_job(&mut buf, job);
        fold(&mut hash, &buf);
    }
    fold(&mut hash, &[u8::from(options.record_traces)]);
    hash
}

/// Append-only checkpoint writer; see the module docs for the format.
#[derive(Debug)]
pub struct CheckpointWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    records: usize,
}

impl CheckpointWriter {
    /// Creates (or truncates) a checkpoint for the given sweep identity
    /// and writes the header.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Self, CheckpointError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(MAGIC)?;
        writer.write_all(&fingerprint.to_le_bytes())?;
        writer.flush()?;
        Ok(Self {
            writer,
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Opens an existing checkpoint for appending after `loaded` records
    /// were recovered from it: the recovered records are rewritten to a
    /// sibling temp file (discarding any torn tail) which then atomically
    /// renames over the original — a crash mid-rewrite leaves the old
    /// checkpoint untouched, never a truncated one.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn resume(
        path: &Path,
        loaded: &[JobResult],
        fingerprint: u64,
    ) -> Result<Self, CheckpointError> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".rewrite");
        let tmp = PathBuf::from(tmp);
        let mut writer = Self::create(&tmp, fingerprint)?;
        for result in loaded {
            writer.append(result)?;
        }
        // append() flushed every record to the OS; the rename makes the
        // compacted file the checkpoint in one step. The open handle
        // follows the inode, so subsequent appends land in `path`.
        std::fs::rename(&tmp, path)?;
        writer.path = path.to_path_buf();
        Ok(writer)
    }

    /// Appends one completed result and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn append(&mut self, result: &JobResult) -> Result<(), CheckpointError> {
        let mut payload = Vec::with_capacity(128);
        wire::put_job_result(&mut payload, result);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer
            .write_all(&wire::payload_checksum(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Records appended so far (including any re-appended on resume).
    pub fn records(&self) -> usize {
        self.records
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Loads a checkpoint's recovered results, validating the header against
/// `fingerprint` and every record against its stored checksum. Returns
/// results in file order (deduplicated by job id, first occurrence
/// wins). A truncated or checksum-failing *final* record is silently
/// dropped — that is what a crash mid-append looks like.
///
/// # Errors
///
/// [`CheckpointError::Corrupt`] for bad magic, a checksum failure on any
/// non-tail record, or a checksum-valid record that still does not
/// decode; [`CheckpointError::PlanMismatch`] for a different sweep.
pub fn load(path: &Path, fingerprint: u64) -> Result<Vec<JobResult>, CheckpointError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::Corrupt("bad or missing header".into()));
    }
    let found = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if found != fingerprint {
        return Err(CheckpointError::PlanMismatch {
            found,
            expected: fingerprint,
        });
    }
    let mut results: Vec<JobResult> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut pos = 16usize;
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            break; // torn record header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let expected = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + 8;
        let Some(end) = start.checked_add(len).filter(|&end| end <= bytes.len()) else {
            break; // torn record body
        };
        let payload = &bytes[start..end];
        if wire::payload_checksum(payload) != expected {
            if end == bytes.len() {
                break; // torn write of the final record
            }
            return Err(CheckpointError::Corrupt(format!(
                "record at byte {pos} fails its checksum"
            )));
        }
        match wire::decode_job_result(payload) {
            Ok(result) => {
                if seen.insert(result.job.id) {
                    results.push(result);
                }
            }
            // The checksum passed, so these bytes are exactly what the
            // writer stored — undecodable means a writer/reader bug or a
            // forged file, and tolerating it would hide real corruption.
            Err(WireError::Malformed(what)) => return Err(CheckpointError::Corrupt(what)),
            Err(e) => return Err(CheckpointError::Corrupt(e.to_string())),
        }
        pos = end;
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::units::Seconds;
    use av_scenarios::catalog::ScenarioId;
    use zhuyi_fleet::store::ProbeOutcome;
    use zhuyi_fleet::{JobId, JobKind, JobOutcome, JobSpec, RateSpec, SweepJob};

    fn probe_result(id: u64, collided: bool) -> JobResult {
        JobResult {
            job: SweepJob {
                id: JobId(id),
                spec: JobSpec {
                    scenario: ScenarioId::CutOut.into(),
                    seed: id,
                    kind: JobKind::Probe {
                        plan: RateSpec::Uniform(4.0),
                        keep_trace: false,
                    },
                },
            },
            outcome: JobOutcome::Probe(ProbeOutcome {
                collided,
                collision_time: None,
                collision_actor: None,
                min_clearance: Some(av_core::units::Meters(1.5)),
                duration: Seconds(25.0),
                trace_csv: None,
            }),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zhuyi-distd-ckpt-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join("ckpt.bin")
    }

    #[test]
    fn write_load_round_trip_with_dedup() {
        let path = tmp("roundtrip");
        let mut w = CheckpointWriter::create(&path, 42).expect("create");
        w.append(&probe_result(0, false)).expect("append");
        w.append(&probe_result(1, true)).expect("append");
        w.append(&probe_result(0, false)).expect("append dup");
        drop(w);
        let loaded = load(&path, 42).expect("load");
        assert_eq!(loaded.len(), 2, "duplicate job id must collapse");
        assert_eq!(loaded[0].job.id, JobId(0));
        assert_eq!(loaded[1].job.id, JobId(1));
        assert_eq!(loaded[1], probe_result(1, true));
    }

    #[test]
    fn torn_tail_is_dropped_and_resume_rewrites_it() {
        let path = tmp("torn");
        let mut w = CheckpointWriter::create(&path, 7).expect("create");
        w.append(&probe_result(0, false)).expect("append");
        w.append(&probe_result(1, false)).expect("append");
        drop(w);
        // Tear the last record mid-body.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear");
        let loaded = load(&path, 7).expect("load survives torn tail");
        assert_eq!(loaded.len(), 1);
        // Resume compacts the file; a fresh load sees both the recovered
        // record and anything appended after.
        let mut w = CheckpointWriter::resume(&path, &loaded, 7).expect("resume");
        w.append(&probe_result(2, true)).expect("append");
        drop(w);
        let reloaded = load(&path, 7).expect("reload");
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded[1].job.id, JobId(2));
    }

    #[test]
    fn wrong_fingerprint_and_bad_magic_are_refused() {
        let path = tmp("mismatch");
        drop(CheckpointWriter::create(&path, 1).expect("create"));
        assert!(matches!(
            load(&path, 2),
            Err(CheckpointError::PlanMismatch {
                found: 1,
                expected: 2
            })
        ));
        std::fs::write(&path, b"not a checkpoint").expect("clobber");
        assert!(matches!(load(&path, 1), Err(CheckpointError::Corrupt(_))));
    }

    /// Deterministic xorshift64* for the corruption fuzzers below.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The fuzzers' shared oracle: whatever `load` accepts must be a
    /// prefix of what was written — corruption may cost records or fail
    /// the load, but can never change or invent one.
    fn assert_prefix_of_originals(loaded: &[JobResult], originals: &[JobResult]) {
        assert!(loaded.len() <= originals.len());
        for (got, want) in loaded.iter().zip(originals) {
            assert_eq!(got, want, "accepted record must be byte-faithful");
        }
    }

    #[test]
    fn truncation_fuzz_never_panics_and_never_lies() {
        let path = tmp("fuzz-trunc");
        let originals: Vec<JobResult> = (0..6).map(|id| probe_result(id, id % 2 == 0)).collect();
        let mut w = CheckpointWriter::create(&path, 99).expect("create");
        for r in &originals {
            w.append(r).expect("append");
        }
        drop(w);
        let bytes = std::fs::read(&path).expect("read");
        let mut rng = 0x5eed_c0de_u64;
        for _ in 0..200 {
            let cut = (xorshift(&mut rng) as usize) % (bytes.len() + 1);
            std::fs::write(&path, &bytes[..cut]).expect("truncate");
            match load(&path, 99) {
                Ok(loaded) => assert_prefix_of_originals(&loaded, &originals),
                Err(CheckpointError::Corrupt(_)) => {} // header lost — fine
                Err(e) => panic!("unexpected error on truncation at {cut}: {e}"),
            }
        }
    }

    #[test]
    fn bitflip_fuzz_never_panics_and_never_lies() {
        let path = tmp("fuzz-flip");
        let originals: Vec<JobResult> = (0..6).map(|id| probe_result(id, id % 3 == 0)).collect();
        let mut w = CheckpointWriter::create(&path, 77).expect("create");
        for r in &originals {
            w.append(r).expect("append");
        }
        drop(w);
        let bytes = std::fs::read(&path).expect("read");
        let mut rng = 0xf1ea_5eed_u64;
        for _ in 0..300 {
            let mut mutated = bytes.clone();
            let bit = (xorshift(&mut rng) as usize) % (mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            std::fs::write(&path, &mutated).expect("flip");
            match load(&path, 77) {
                // A flip can hide in a record header in ways that only
                // truncate the accepted set (e.g. a larger length makes
                // the record read as torn) — but an accepted record must
                // still be exactly what was written.
                Ok(loaded) => assert_prefix_of_originals(&loaded, &originals),
                Err(CheckpointError::Corrupt(_)) => {}
                Err(CheckpointError::PlanMismatch { .. }) => {} // flip in the fingerprint
                Err(e) => panic!("unexpected error on bit {bit}: {e}"),
            }
        }
    }

    #[test]
    fn fingerprint_separates_plans_and_options() {
        let plan_a = SweepPlan::builder()
            .scenarios([ScenarioId::CutOut])
            .seeds([0])
            .probe(4.0, false)
            .build();
        let plan_b = SweepPlan::builder()
            .scenarios([ScenarioId::CutOut])
            .seeds([1])
            .probe(4.0, false)
            .build();
        let defaults = ExecOptions::default();
        let recording = ExecOptions {
            record_traces: true,
            ..ExecOptions::default()
        };
        assert_eq!(
            plan_fingerprint(&plan_a, defaults),
            plan_fingerprint(&plan_a, defaults),
            "fingerprint must be deterministic"
        );
        assert_ne!(
            plan_fingerprint(&plan_a, defaults),
            plan_fingerprint(&plan_b, defaults)
        );
        assert_ne!(
            plan_fingerprint(&plan_a, defaults),
            plan_fingerprint(&plan_a, recording)
        );
    }
}
