//! **zhuyi-distd** — the multi-process sharded sweep subsystem: a
//! coordinator/worker runtime that distributes a
//! [`zhuyi_fleet::SweepPlan`] across OS processes (and, over TCP, across
//! hosts) using only the standard library.
//!
//! PR 1–3 made a sweep a pure function of its plan and gave results an
//! id-ordered, location-independent merge; this crate adds the layer the
//! ROADMAP's sharding north star asks for on top of that invariant:
//!
//! - [`wire`] — the length-prefixed framed protocol: versioned handshake,
//!   shard assignment, streamed per-job results, heartbeats, revocation;
//! - [`coord`] — [`coord::run_distributed`]: a work-stealing shard
//!   scheduler with per-worker in-flight tracking, crash detection (EOF +
//!   heartbeat timeout) with shard reassignment and respawning, and
//!   crash-safe [`checkpoint`]ing of completed jobs;
//! - [`worker`] — the worker loop (`fleet_shard`, or `fleet_sweep
//!   --connect` on another host) executing jobs through the fleet
//!   engine's metrics-only [`zhuyi_fleet::exec`] path;
//! - [`cli`] — shared parsing/validation of the distribution flags;
//! - [`faultnet`] — deterministic seeded fault injection over the wire
//!   (chaos testing that replays exactly);
//! - [`quarantine`] — the poisoned-job manifest behind the coordinator's
//!   K-strikes graceful-degradation path;
//! - [`daemon`] — the persistent sweep service ([`daemon::run_daemon`],
//!   `fleet_sweep --daemon`): a durable write-ahead [`journal`] of plan
//!   submissions and results, bounded admission with `Busy`
//!   load-shedding, per-client round-robin fairness, lease-based orphan
//!   handling, warm workers kept across plans, and graceful drain — a
//!   `kill -9` mid-sweep resumes from the journal on restart;
//! - [`client`] — the submit-side library (`fleet_sweep --submit`):
//!   request-per-connection retries with exponential backoff and
//!   deterministic jitter, riding the daemon's fingerprint dedup for
//!   exactly-once admission over a flaky link;
//! - [`journal`] — the daemon's append-only, per-record-flushed record
//!   log (checkpoint-v2 framing: FNV-checksummed records, torn tails
//!   tolerated, mid-file corruption refused).
//!
//! # Determinism
//!
//! A distributed sweep exports **byte-identical** CSV/JSON to the same
//! sweep run single-process: jobs are executed by the exact same
//! deterministic `exec` code, `f64`s cross the wire as IEEE-754 bit
//! patterns, and the merge is the same id-ordered
//! [`zhuyi_fleet::ResultStore`] merge — so worker count, shard shape,
//! steals, crashes, and checkpoint resumes are all invisible in the
//! output. `tests/dist_determinism.rs` pins every one of those claims.
//!
//! # Quickstart
//!
//! ```no_run
//! use zhuyi_distd::{run_distributed, DistConfig};
//! use zhuyi_fleet::SweepPlan;
//!
//! let plan = SweepPlan::builder()
//!     .jittered_variants(10)
//!     .min_safe_fpr(vec![1, 2, 4, 6, 10, 30])
//!     .build();
//! let report = run_distributed(&plan, &DistConfig {
//!     spawn_workers: 4,
//!     ..DistConfig::default()
//! }).expect("distributed sweep");
//! println!("{}", report.store.summary_table().render());
//! assert_eq!(report.stats.executed_jobs, plan.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod cli;
pub mod client;
pub mod coord;
pub mod daemon;
pub mod faultnet;
pub mod journal;
pub mod quarantine;
pub mod wire;
pub mod worker;

pub use checkpoint::{plan_fingerprint, CheckpointError, CheckpointWriter};
pub use client::{run_via_daemon, submit_plan, ClientConfig, ClientError, SubmitOutcome};
pub use coord::{
    default_worker_binary, run_distributed, DistConfig, DistError, DistReport, DistStats,
};
pub use daemon::{run_daemon, DaemonConfig, DaemonError, DaemonReport, DaemonStats};
pub use faultnet::{ChaosProfile, ChaosSpec, FaultTransport};
pub use journal::{JournalError, JournalRecord, JournalWriter};
pub use quarantine::{QuarantineEntry, QuarantineManifest};
pub use wire::{Frame, JobError, JobErrorKind, PlanState, WireError, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerError, WorkerOptions, FAULT_EXIT_CODE};
