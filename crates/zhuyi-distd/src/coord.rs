//! The sweep coordinator: shards a [`SweepPlan`] across worker processes,
//! reassigns work on crashes, checkpoints completed jobs, and merges
//! results deterministically.
//!
//! # Scheduler
//!
//! Pending jobs are chunked into contiguous *shards* (batches) that idle
//! workers pull from a shared queue — dynamic self-scheduling, so fast
//! workers naturally take more shards. When the queue runs dry and a
//! worker goes idle, the scheduler **steals the tail half** of the busiest
//! in-flight shard: the stolen job ids are revoked from the victim (which
//! skips any of them it has not started) and assigned to the idle worker.
//! A job that both workers end up executing is harmless — execution is a
//! pure function of the job, and the merge keeps only the first result
//! per id.
//!
//! # Worker lifecycle
//!
//! ```text
//!           spawn/accept          Assign             BatchDone
//!  (child) ────────────► idle ──────────► busy ────────────► idle ─► ...
//!                          │                │ socket EOF /
//!                          │                │ heartbeat timeout
//!                          ▼                ▼
//!                        dead ◄──────── dead: shard's unfinished jobs
//!                    (respawn if          requeue at the front
//!                     coordinator-spawned
//!                     and budget remains)
//! ```
//!
//! Crash detection is two-layered: a closed socket (EOF mid-read) is
//! immediate, and a heartbeat timeout catches connections that died
//! without an EOF (half-open sockets, vanished hosts). A worker whose
//! *simulation* wedges is deliberately not declared dead by heartbeats —
//! its ticker thread keeps beating, and since job execution is
//! deterministic, a wedged job would wedge identically on any other
//! worker; [`DistConfig::stall_timeout`] is the backstop that ends such
//! a run with an explicit error. Workers the coordinator spawned itself
//! are respawned (fresh, without fault-injection flags) while work
//! remains and the respawn budget allows; externally joined workers are
//! simply dropped.
//!
//! # Fault tolerance
//!
//! Beyond whole-worker crashes, the coordinator survives *per-job*
//! failures without aborting the sweep:
//!
//! - a worker's contained panic arrives as [`Frame::JobFailed`] and
//!   counts one **strike** against the job; the job is requeued;
//! - an optional per-job deadline ([`DistConfig::job_deadline`]) strikes
//!   a job whose shard stops yielding results — the wedged worker is
//!   dropped (and its spawned process killed, so the respawn path brings
//!   up a replacement) and the shard's remainder requeued;
//! - at [`DistConfig::max_job_failures`] strikes a job is **quarantined**:
//!   pulled from every queue, revoked wherever assigned, and reported in
//!   the [`DistReport::quarantine`] manifest. The sweep then *completes*
//!   over the surviving jobs — graceful degradation, never a poisoned
//!   hang;
//! - an optional sampled fraction of jobs
//!   ([`DistConfig::verify_fraction`]) is executed **twice**, on the
//!   back of the queue; because execution is bit-deterministic the two
//!   encoded results must match byte-for-byte, so any mismatch is
//!   executor corruption and fails the run loudly with
//!   [`DistError::VerifyMismatch`].
//!
//! # Determinism invariant
//!
//! The merged [`ResultStore`] is built exclusively from id-deduplicated
//! results sorted by [`zhuyi_fleet::JobId`] — the same merge a
//! single-process [`zhuyi_fleet::run_sweep`] performs — so worker count,
//! shard boundaries, steals, crashes, and checkpoint resumes cannot change
//! a single exported byte. `tests/dist_determinism.rs` pins this, and
//! `tests/chaos.rs` extends it under injected fault storms: completed-job
//! exports stay byte-identical to a clean single-process run over the
//! same surviving job set.

use crate::checkpoint::{self, CheckpointError, CheckpointWriter};
use crate::faultnet::{self, ChaosSpec};
use crate::quarantine::{QuarantineEntry, QuarantineManifest};
use crate::wire::{self, Frame, JobError, JobErrorKind, WireError, PROTOCOL_VERSION};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use zhuyi_fleet::{ExecOptions, JobId, JobResult, ResultStore, SweepJob, SweepPlan};
use zhuyi_telemetry::{Counter, FlightRecorder, Gauge, Registry, Snapshot};

/// Configuration of one distributed sweep run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker processes the coordinator spawns itself (0 is allowed when
    /// [`DistConfig::listen`] accepts external workers).
    pub spawn_workers: usize,
    /// Path of the `fleet_shard` worker binary; `None` resolves a sibling
    /// of the current executable (see [`default_worker_binary`]).
    pub worker_binary: Option<PathBuf>,
    /// Additional listen address (`host:port`) for workers joining from
    /// other processes or hosts via `--connect`. `None` binds an ephemeral
    /// loopback port used only by spawned workers.
    pub listen: Option<String>,
    /// Checkpoint file: completed jobs append here and an existing,
    /// fingerprint-matching file is resumed instead of re-simulated.
    pub checkpoint: Option<PathBuf>,
    /// Sweep-wide execution options, forwarded to every worker.
    pub options: ExecOptions,
    /// Jobs per shard; `None` derives `ceil(pending / (workers * 4))`,
    /// small enough for the pull queue to balance, large enough to
    /// amortize frames.
    pub batch_size: Option<usize>,
    /// A worker silent for longer than this is declared dead.
    pub heartbeat_timeout: Duration,
    /// Hard cap on sweep-wide silence: if no result arrives for this long
    /// the run aborts with [`DistError::Stalled`] instead of hanging.
    pub stall_timeout: Duration,
    /// Replacement processes the coordinator may spawn for crashed
    /// spawned workers.
    pub max_respawns: usize,
    /// Extra argv appended to the k-th *initially* spawned worker —
    /// the fault-injection hook (`--fail-after N`) the crash tests use.
    /// Respawned replacements never inherit these.
    pub worker_extra_args: Vec<Vec<String>>,
    /// Extra argv appended to every *respawned* replacement worker.
    /// Empty (the default) keeps respawns clean; the chaos tests use it
    /// to make replacements inherit a `--poison-job`/`--wedge-job` fault
    /// (but never chaos or `--fail-after` flags, which must not recur).
    pub respawn_extra_args: Vec<String>,
    /// Strikes (contained panics, expired deadlines) a job may accrue
    /// before it is quarantined; clamped to at least 1.
    pub max_job_failures: usize,
    /// If set, a shard that yields no result for this long strikes the
    /// job it is stuck on and drops (and kills, if spawned) its worker.
    /// Must comfortably exceed the slowest honest job.
    pub job_deadline: Option<Duration>,
    /// Fraction (0.0–1.0) of jobs sampled for duplicate-execution
    /// cross-checking; sampled ids are chosen by a hash of the job id
    /// and the plan fingerprint, so the same sweep verifies the same
    /// jobs on every run.
    pub verify_fraction: f64,
    /// Deterministic fault injection: spawned workers receive
    /// `--chaos-profile`/`--chaos-seed` flags derived from this spec
    /// (per-worker seeds via [`faultnet::derive_worker_seed`]).
    /// Respawned replacements never inherit chaos.
    pub chaos: Option<ChaosSpec>,
    /// Test hook: abort the run (checkpoint intact) after this many fresh
    /// results, simulating a coordinator crash mid-sweep.
    pub abort_after_results: Option<usize>,
    /// Collect telemetry: workers run with an installed registry and
    /// piggyback cumulative [`Frame::Metrics`] snapshots on the result
    /// stream; the coordinator folds them (in worker-id order) with its
    /// own scheduling counters into [`DistReport::telemetry`]. Telemetry
    /// is strictly out-of-band — it cannot change a single exported byte.
    pub telemetry: bool,
    /// Serve a Prometheus-style plaintext exposition of the live folded
    /// telemetry on this `host:port` for the duration of the run.
    /// Implies telemetry collection even when [`DistConfig::telemetry`]
    /// is off.
    pub metrics_listen: Option<String>,
    /// Directory for flight-recorder dumps. When set, the coordinator
    /// keeps a bounded ring of recent scheduling events and writes
    /// `flight-job<ID>-<trigger>.json` post-mortems on every job panic,
    /// deadline strike, and quarantine.
    pub flight_dir: Option<PathBuf>,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            spawn_workers: 2,
            worker_binary: None,
            listen: None,
            checkpoint: None,
            options: ExecOptions::default(),
            batch_size: None,
            heartbeat_timeout: Duration::from_secs(30),
            stall_timeout: Duration::from_secs(600),
            max_respawns: 3,
            worker_extra_args: Vec::new(),
            respawn_extra_args: Vec::new(),
            max_job_failures: 3,
            job_deadline: None,
            verify_fraction: 0.0,
            chaos: None,
            abort_after_results: None,
            telemetry: false,
            metrics_listen: None,
            flight_dir: None,
        }
    }
}

/// Counters describing how a distributed run actually unfolded. None of
/// these influence the merged output (see the determinism invariant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Workers that completed the handshake.
    pub workers_connected: usize,
    /// Workers lost to EOF or heartbeat timeout.
    pub workers_lost: usize,
    /// Replacement processes spawned for crashed spawned workers.
    pub workers_respawned: usize,
    /// Shards assigned (including reassignments and stolen shards).
    pub batches_assigned: usize,
    /// Shards whose unfinished jobs were requeued after a worker died.
    pub batches_reassigned: usize,
    /// Jobs moved to an idle worker by tail stealing.
    pub jobs_stolen: usize,
    /// Results discarded because another worker delivered the job first.
    pub duplicate_results: usize,
    /// Jobs recovered from the checkpoint instead of executed.
    pub resumed_jobs: usize,
    /// Jobs executed (first results) this run.
    pub executed_jobs: usize,
    /// Strikes recorded (contained panics + deadline expiries).
    pub job_failures: usize,
    /// Strikes that came from an expired per-job deadline.
    pub deadline_strikes: usize,
    /// Jobs that reached the strike limit and were quarantined.
    pub jobs_quarantined: usize,
    /// Jobs sampled for duplicate-execution cross-checking.
    pub verify_jobs: usize,
    /// Cross-checked job pairs whose encoded results matched exactly.
    pub verify_confirmed: usize,
    /// Respawn attempts that failed to start a process (each consumes
    /// one unit of the respawn budget and is retried after a backoff).
    pub respawn_failures: usize,
}

/// A finished distributed sweep: the merged store plus run statistics.
#[derive(Debug)]
pub struct DistReport {
    /// Merged, id-ordered results — byte-identical exports to a
    /// single-process sweep of the same plan (minus any quarantined
    /// jobs).
    pub store: ResultStore,
    /// How the run unfolded.
    pub stats: DistStats,
    /// Jobs the sweep gave up on, with their recorded strikes; empty on
    /// a clean run.
    pub quarantine: QuarantineManifest,
    /// The folded telemetry snapshot — the coordinator's own scheduling
    /// registry merged with every worker's final cumulative snapshot in
    /// worker-id order. `None` unless [`DistConfig::telemetry`] (or
    /// [`DistConfig::metrics_listen`]) asked for collection.
    pub telemetry: Option<Snapshot>,
}

/// Errors a distributed run can end with.
#[derive(Debug)]
pub enum DistError {
    /// Socket or process plumbing failed.
    Io(String),
    /// No worker could serve the sweep (none spawned, none joined, none
    /// respawnable).
    NoWorkers(String),
    /// The worker binary could not be resolved.
    WorkerBinary(String),
    /// Checkpoint file problems.
    Checkpoint(CheckpointError),
    /// The `abort_after_results` test hook fired.
    Aborted {
        /// Fresh results recorded before aborting.
        completed: usize,
    },
    /// No result arrived within [`DistConfig::stall_timeout`].
    Stalled {
        /// Jobs finished before the stall.
        completed: usize,
        /// Jobs the plan wanted.
        total: usize,
    },
    /// Duplicate-execution cross-checking caught two byte-different
    /// results for the same job — executor corruption or lost
    /// determinism; the results cannot be trusted.
    VerifyMismatch {
        /// The job whose two executions disagreed.
        job: u64,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Io(what) => write!(f, "distributed sweep i/o failure: {what}"),
            DistError::NoWorkers(what) => write!(f, "no workers available: {what}"),
            DistError::WorkerBinary(what) => write!(f, "{what}"),
            DistError::Checkpoint(e) => write!(f, "{e}"),
            DistError::Aborted { completed } => {
                write!(f, "aborted by test hook after {completed} results")
            }
            DistError::Stalled { completed, total } => {
                write!(f, "sweep stalled at {completed}/{total} jobs")
            }
            DistError::VerifyMismatch { job } => {
                write!(
                    f,
                    "duplicate-execution cross-check failed: job {job} produced two \
                     byte-different results — executor corruption or lost determinism"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<CheckpointError> for DistError {
    fn from(e: CheckpointError) -> Self {
        DistError::Checkpoint(e)
    }
}

/// Resolves the `fleet_shard` worker binary as a sibling of the running
/// executable (where cargo places every binary of the workspace).
///
/// # Errors
///
/// A human-readable message naming the missing path and the build command
/// that produces it.
pub fn default_worker_binary() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate current exe: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| "current exe has no parent directory".to_string())?;
    let candidate = dir.join(format!("fleet_shard{}", std::env::consts::EXE_SUFFIX));
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(format!(
            "worker binary not found at {} — build it first \
             (`cargo build --release -p zhuyi-distd --bin fleet_shard`) \
             or pass an explicit path",
            candidate.display()
        ))
    }
}

/// Chunks `jobs` into contiguous shards of at most `size` jobs.
pub(crate) fn chunk_batches(jobs: &[SweepJob], size: usize) -> VecDeque<Vec<SweepJob>> {
    jobs.chunks(size.max(1)).map(<[SweepJob]>::to_vec).collect()
}

/// The derived default shard size: small enough for the pull queue to
/// balance across `workers`, large enough to amortize protocol frames.
/// An external-only coordinator (`workers == 0`, `--listen`) cannot know
/// how many workers will join, so it assumes a fleet of 8 — fine-grained
/// enough that late joiners pull real work instead of living off steals.
pub(crate) fn default_batch_size(pending: usize, workers: usize) -> usize {
    let workers = if workers == 0 { 8 } else { workers };
    pending.div_ceil(workers * 4).max(1)
}

pub(crate) type WorkerId = u64;

/// Locks a possibly-poisoned mutex, recovering the inner value instead of
/// panicking. A metrics scrape or fold that panicked while holding the
/// lock poisons it, but the snapshot map inside is plain data and stays
/// valid — letting the poison flag take down the whole coordinator (or
/// daemon) would turn one observability hiccup into a lost sweep. Each
/// recovery is counted in telemetry when a registry is at hand.
pub(crate) fn lock_recovering<'a, T>(
    mutex: &'a Mutex<T>,
    registry: Option<&Registry>,
) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        if let Some(reg) = registry {
            reg.inc(Counter::PoisonRecoveries);
        }
        poisoned.into_inner()
    })
}

/// First retry delay after a failed respawn attempt; doubles per
/// consecutive failure up to [`RESPAWN_BACKOFF_CEIL`].
const RESPAWN_BACKOFF_FLOOR: Duration = Duration::from_millis(250);
/// Upper bound on the respawn retry backoff.
const RESPAWN_BACKOFF_CEIL: Duration = Duration::from_secs(2);

enum Event {
    Connected {
        worker: WorkerId,
        writer: TcpStream,
        spawned: bool,
        name: String,
    },
    Frame {
        worker: WorkerId,
        frame: Frame,
    },
    Disconnected {
        worker: WorkerId,
    },
}

struct WorkerConn {
    writer: TcpStream,
    name: String,
    spawned: bool,
    busy: Option<u32>,
    last_seen: Instant,
}

struct Inflight {
    worker: WorkerId,
    remaining: BTreeMap<u64, SweepJob>,
    /// When this shard last yielded a result (or was assigned) — what
    /// the per-job deadline measures against.
    last_result: Instant,
}

pub(crate) struct ChildSlot {
    pub(crate) name: String,
    pub(crate) child: Child,
    pub(crate) exited: bool,
}

/// What a recorded strike did to the job.
enum StrikeOutcome {
    /// Below the limit: the job deserves another attempt.
    Retry,
    /// The strike limit was reached; the job is now quarantined.
    Quarantined,
    /// The job was already done or quarantined — the strike is moot.
    Settled,
}

/// Everything the scheduling loop mutates, factored out so event handling
/// stays in named methods instead of one giant match.
struct Coordinator {
    workers: BTreeMap<WorkerId, WorkerConn>,
    /// Execution options stamped onto every [`Frame::Assign`] (v7 carries
    /// them per-assignment, not per-session, so warm workers can serve
    /// plans with different shapes).
    options: ExecOptions,
    pending: VecDeque<Vec<SweepJob>>,
    inflight: BTreeMap<u32, Inflight>,
    done: BTreeMap<JobId, JobResult>,
    next_batch: u32,
    stats: DistStats,
    checkpoint: Option<CheckpointWriter>,
    total: usize,
    /// Every plan job this run may execute, for requeues and the
    /// quarantine manifest.
    jobs_by_id: BTreeMap<u64, SweepJob>,
    /// Strikes recorded against jobs not (yet) quarantined.
    failures: BTreeMap<u64, Vec<JobError>>,
    /// Jobs the sweep gave up on.
    quarantined: BTreeMap<u64, QuarantineEntry>,
    /// Duplicate-execution slots: `None` until the first result arrives,
    /// then its encoded bytes until the second confirms (and the entry
    /// is removed) or mismatches (and the run fails).
    verify_pending: BTreeMap<u64, Option<Vec<u8>>>,
    max_job_failures: usize,
    /// The coordinator's own registry (scheduling counters, gauges, and
    /// received-frame accounting); `None` when telemetry is off.
    telemetry: Option<Arc<Registry>>,
    /// Latest cumulative snapshot per worker, shared with the metrics
    /// endpoint thread. A worker's snapshot survives its death — the
    /// work it reported on still happened.
    worker_metrics: Arc<Mutex<BTreeMap<WorkerId, Snapshot>>>,
    /// Bounded ring of recent scheduling events, dumped on job panics,
    /// deadline strikes, and quarantines; `None` without a dump dir.
    flight: Option<(FlightRecorder, PathBuf)>,
}

impl Coordinator {
    fn note(&self, counter: Counter) {
        if let Some(reg) = &self.telemetry {
            reg.inc(counter);
        }
    }

    /// Records one scheduling event into the flight ring (no-op without
    /// a recorder).
    fn flight_note(&self, kind: &'static str, worker: WorkerId, job: Option<u64>, detail: String) {
        if let Some((recorder, _)) = &self.flight {
            recorder.record(kind, worker, job, detail);
        }
    }

    /// Dumps the flight ring for `job` into the configured dump dir as
    /// `flight-job<ID>-<trigger>.json` (best-effort: a failed write must
    /// not take down the sweep).
    fn flight_dump(&self, trigger: &'static str, job: u64) {
        if let Some((recorder, dir)) = &self.flight {
            let path = dir.join(format!("flight-job{job}-{trigger}.json"));
            if std::fs::write(&path, recorder.dump_json(trigger, Some(job))).is_ok() {
                self.note(Counter::FlightDumps);
            } else {
                eprintln!(
                    "fleet coordinator: could not write flight dump {}",
                    path.display()
                );
            }
        }
    }

    /// True while any job still needs executing: unfinished plan jobs,
    /// or outstanding duplicate-execution copies.
    fn work_outstanding(&self) -> bool {
        self.done.len() + self.quarantined.len() < self.total || !self.verify_pending.is_empty()
    }

    /// Ingests one streamed result; returns whether it was fresh (first
    /// for its id).
    fn handle_result(&mut self, worker: WorkerId, result: JobResult) -> Result<bool, DistError> {
        let id = result.job.id;
        // Quarantine is final: a straggler result for a quarantined job
        // (say, a wedged copy that eventually finished) is discarded so
        // the manifest and the completed set stay mutually exclusive.
        if self.quarantined.contains_key(&id.0) {
            self.stats.duplicate_results += 1;
            return Ok(false);
        }
        if let Some(slot) = self.verify_pending.get_mut(&id.0) {
            let mut bytes = Vec::with_capacity(160);
            wire::put_job_result(&mut bytes, &result);
            match slot.take() {
                None => *slot = Some(bytes),
                Some(first) => {
                    if first != bytes {
                        return Err(DistError::VerifyMismatch { job: id.0 });
                    }
                    self.stats.verify_confirmed += 1;
                    self.verify_pending.remove(&id.0);
                }
            }
            // Clear only the copy this worker reported on; the other
            // copy stays tracked so a crash still requeues it.
            self.clear_copy(worker, id.0);
        } else {
            for fl in self.inflight.values_mut() {
                if fl.remaining.remove(&id.0).is_some() {
                    fl.last_result = Instant::now();
                }
            }
        }
        if self.done.contains_key(&id) {
            self.stats.duplicate_results += 1;
            return Ok(false);
        }
        if let Some(writer) = &mut self.checkpoint {
            writer.append(&result)?;
        }
        self.stats.executed_jobs += 1;
        self.flight_note("result", worker, Some(id.0), String::new());
        self.done.insert(id, result);
        Ok(true)
    }

    /// Removes the one assigned copy of `id` that `worker` just reported
    /// on (result or failure), leaving any duplicate-execution copy
    /// tracked elsewhere.
    fn clear_copy(&mut self, worker: WorkerId, id: u64) {
        for fl in self.inflight.values_mut() {
            if fl.worker == worker && fl.remaining.remove(&id).is_some() {
                fl.last_result = Instant::now();
                return;
            }
        }
    }

    /// Records one strike against `id` and quarantines it at the limit.
    fn strike(&mut self, id: u64, error: JobError) -> StrikeOutcome {
        if self.done.contains_key(&JobId(id)) || self.quarantined.contains_key(&id) {
            return StrikeOutcome::Settled;
        }
        self.stats.job_failures += 1;
        let strikes = self.failures.entry(id).or_default();
        strikes.push(error);
        if strikes.len() >= self.max_job_failures {
            self.quarantine(id);
            StrikeOutcome::Quarantined
        } else {
            StrikeOutcome::Retry
        }
    }

    /// Pulls `id` out of the sweep entirely: every queued copy dropped,
    /// every assigned copy revoked, the verify slot cancelled, and the
    /// job recorded in the manifest with its strikes.
    fn quarantine(&mut self, id: u64) {
        let strikes = self.failures.remove(&id).unwrap_or_default();
        eprintln!(
            "fleet coordinator: quarantining job {id} after {} strike(s); last: {}",
            strikes.len(),
            strikes.last().map_or_else(String::new, |s| s.to_string()),
        );
        for batch in &mut self.pending {
            batch.retain(|j| j.id.0 != id);
        }
        self.pending.retain(|batch| !batch.is_empty());
        let holders: Vec<WorkerId> = self
            .inflight
            .values_mut()
            .filter_map(|fl| fl.remaining.remove(&id).map(|_| fl.worker))
            .collect();
        for worker in holders {
            if let Some(conn) = self.workers.get_mut(&worker) {
                let _ = wire::write_frame(&mut conn.writer, &Frame::Revoke { jobs: vec![id] });
            }
        }
        self.verify_pending.remove(&id);
        let job = self
            .jobs_by_id
            .get(&id)
            .cloned()
            .expect("a struck job is always a plan job");
        self.stats.jobs_quarantined += 1;
        self.note(Counter::QuarantinedJobs);
        self.flight_note(
            "quarantine",
            0,
            Some(id),
            format!("{} strike(s)", strikes.len()),
        );
        self.flight_dump("quarantine", id);
        self.quarantined
            .insert(id, QuarantineEntry { job, strikes });
    }

    /// Gives `worker` its next shard: pull from the queue, or steal the
    /// tail half of the busiest in-flight shard.
    fn dispatch(&mut self, worker: WorkerId) {
        let Some(conn) = self.workers.get(&worker) else {
            return;
        };
        if conn.busy.is_some() {
            return;
        }
        if let Some(jobs) = self.pending.pop_front() {
            self.assign(worker, jobs);
            return;
        }
        // Steal: the in-flight shard with the most remaining jobs, as long
        // as there are at least two to split.
        let victim = self
            .inflight
            .iter()
            .filter(|(_, fl)| fl.worker != worker && fl.remaining.len() >= 2)
            .max_by_key(|(_, fl)| fl.remaining.len())
            .map(|(&batch, _)| batch);
        let Some(victim_batch) = victim else {
            return;
        };
        let (victim_worker, stolen) = {
            let fl = self.inflight.get_mut(&victim_batch).expect("victim exists");
            let keep = fl.remaining.len().div_ceil(2);
            let stolen_ids: Vec<u64> = fl.remaining.keys().skip(keep).copied().collect();
            let stolen: Vec<SweepJob> = stolen_ids
                .iter()
                .map(|id| fl.remaining.remove(id).expect("stolen id present"))
                .collect();
            (fl.worker, stolen)
        };
        if stolen.is_empty() {
            return;
        }
        self.stats.jobs_stolen += stolen.len();
        if let Some(reg) = &self.telemetry {
            reg.add(Counter::Steals, stolen.len() as u64);
        }
        self.flight_note(
            "steal",
            worker,
            None,
            format!("{} jobs from worker {victim_worker}", stolen.len()),
        );
        // Tell the victim to skip anything it has not started; failure to
        // deliver only costs a duplicated (identical) result.
        if let Some(victim_conn) = self.workers.get_mut(&victim_worker) {
            let revoke = Frame::Revoke {
                jobs: stolen.iter().map(|j| j.id.0).collect(),
            };
            let _ = wire::write_frame(&mut victim_conn.writer, &revoke);
        }
        self.assign(worker, stolen);
    }

    fn assign(&mut self, worker: WorkerId, jobs: Vec<SweepJob>) {
        let batch = self.next_batch;
        self.next_batch += 1;
        let Some(conn) = self.workers.get_mut(&worker) else {
            self.pending.push_front(jobs);
            return;
        };
        if wire::write_assign(&mut conn.writer, batch, self.options, &jobs).is_err() {
            self.pending.push_front(jobs);
            self.lose_worker(worker);
            return;
        }
        conn.busy = Some(batch);
        self.stats.batches_assigned += 1;
        self.flight_note("assign", worker, None, format!("batch {batch}"));
        self.inflight.insert(
            batch,
            Inflight {
                worker,
                remaining: jobs.into_iter().map(|j| (j.id.0, j)).collect(),
                last_result: Instant::now(),
            },
        );
    }

    /// Removes a worker and requeues the unfinished jobs of its shards.
    /// Returns the worker's name if the coordinator spawned its process
    /// (so the caller can kill a wedged child and trigger a respawn).
    fn lose_worker(&mut self, worker: WorkerId) -> Option<String> {
        let conn = self.workers.remove(&worker)?;
        let _ = conn.writer.shutdown(Shutdown::Both);
        self.stats.workers_lost += 1;
        self.note(Counter::WorkersLost);
        self.flight_note("worker_lost", worker, None, conn.name.clone());
        eprintln!(
            "fleet coordinator: lost {}worker {} mid-sweep; reassigning its shard",
            if conn.spawned { "spawned " } else { "" },
            conn.name,
        );
        let orphaned: Vec<u32> = self
            .inflight
            .iter()
            .filter(|(_, fl)| fl.worker == worker)
            .map(|(&batch, _)| batch)
            .collect();
        for batch in orphaned {
            let fl = self.inflight.remove(&batch).expect("batch listed");
            if !fl.remaining.is_empty() {
                self.stats.batches_reassigned += 1;
                self.pending
                    .push_front(fl.remaining.into_values().collect());
            }
        }
        conn.spawned.then_some(conn.name)
    }

    fn dispatch_idle(&mut self) {
        let idle: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, c)| c.busy.is_none())
            .map(|(&id, _)| id)
            .collect();
        for worker in idle {
            self.dispatch(worker);
        }
    }

    fn shutdown_workers(&mut self) {
        for conn in self.workers.values_mut() {
            // Send the frame but do not hard-close the socket: a worker
            // may still be flushing its final BatchDone, and exits
            // cleanly on its own once it reads Shutdown.
            let _ = wire::write_frame(&mut conn.writer, &Frame::Shutdown);
        }
        self.workers.clear();
    }
}

pub(crate) fn spawn_worker(
    binary: &PathBuf,
    addr: &str,
    name: &str,
    extra: &[String],
) -> Result<Child, DistError> {
    Command::new(binary)
        .arg("--connect")
        .arg(addr)
        .arg("--name")
        .arg(name)
        .arg("--spawned")
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| DistError::Io(format!("spawning {}: {e}", binary.display())))
}

pub(crate) fn reap_children(children: &mut [ChildSlot]) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut alive = false;
        for slot in children.iter_mut() {
            if slot.exited {
                continue;
            }
            match slot.child.try_wait() {
                Ok(Some(_)) | Err(_) => slot.exited = true,
                Ok(None) => alive = true,
            }
        }
        if !alive {
            return;
        }
        if Instant::now() >= deadline {
            for slot in children.iter_mut() {
                if !slot.exited {
                    let _ = slot.child.kill();
                    let _ = slot.child.wait();
                    slot.exited = true;
                }
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Runs every job of `plan` across worker processes and merges the
/// results; see the module docs for scheduling, fault handling, and the
/// determinism invariant.
///
/// # Errors
///
/// See [`DistError`]. On any error, spawned workers are torn down and the
/// checkpoint (if configured) retains everything completed so far.
pub fn run_distributed(plan: &SweepPlan, config: &DistConfig) -> Result<DistReport, DistError> {
    if config.spawn_workers == 0 && config.listen.is_none() {
        return Err(DistError::NoWorkers(
            "spawn_workers is 0 and no listen address accepts external workers".into(),
        ));
    }

    let fingerprint = checkpoint::plan_fingerprint(plan, config.options);
    // Metrics serving needs a registry to read even when plain collection
    // was not requested.
    let telemetry_on = config.telemetry || config.metrics_listen.is_some();
    let registry = telemetry_on.then(|| Arc::new(Registry::new()));
    let worker_metrics: Arc<Mutex<BTreeMap<WorkerId, Snapshot>>> =
        Arc::new(Mutex::new(BTreeMap::new()));
    let flight = match &config.flight_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| DistError::Io(format!("creating {}: {e}", dir.display())))?;
            Some((
                FlightRecorder::new(FlightRecorder::DEFAULT_CAPACITY),
                dir.clone(),
            ))
        }
        None => None,
    };
    let mut coordinator = Coordinator {
        workers: BTreeMap::new(),
        options: config.options,
        pending: VecDeque::new(),
        inflight: BTreeMap::new(),
        done: BTreeMap::new(),
        next_batch: 0,
        stats: DistStats::default(),
        checkpoint: None,
        total: plan.len(),
        jobs_by_id: BTreeMap::new(),
        failures: BTreeMap::new(),
        quarantined: BTreeMap::new(),
        verify_pending: BTreeMap::new(),
        max_job_failures: config.max_job_failures.max(1),
        telemetry: registry.clone(),
        worker_metrics: Arc::clone(&worker_metrics),
        flight,
    };

    if let Some(path) = &config.checkpoint {
        if path.exists() {
            let loaded = checkpoint::load(path, fingerprint)?;
            coordinator.stats.resumed_jobs = loaded.len();
            coordinator.checkpoint = Some(CheckpointWriter::resume(path, &loaded, fingerprint)?);
            for result in loaded {
                coordinator.done.insert(result.job.id, result);
            }
        } else {
            coordinator.checkpoint = Some(CheckpointWriter::create(path, fingerprint)?);
        }
    }

    let pending_jobs: Vec<SweepJob> = plan
        .jobs()
        .iter()
        .filter(|j| !coordinator.done.contains_key(&j.id))
        .cloned()
        .collect();
    if pending_jobs.is_empty() {
        return Ok(DistReport {
            store: ResultStore::new(coordinator.done.into_values().collect()),
            stats: coordinator.stats,
            quarantine: QuarantineManifest::default(),
            // Everything came from the checkpoint; nothing executed, so
            // the registry (if any) is empty but well-formed.
            telemetry: registry.as_ref().map(|reg| reg.snapshot()),
        });
    }
    coordinator.jobs_by_id = pending_jobs.iter().map(|j| (j.id.0, j.clone())).collect();
    let batch_size = config
        .batch_size
        .unwrap_or_else(|| default_batch_size(pending_jobs.len(), config.spawn_workers));
    coordinator.pending = chunk_batches(&pending_jobs, batch_size);

    // Duplicate-execution sampling: the verify set is a pure function of
    // (job id, plan fingerprint), so reruns of the same sweep verify the
    // same jobs. Second copies ride at the back of the queue — the
    // first-result-wins merge makes them invisible in the output, and
    // the byte-compare in `handle_result` turns bit-determinism into a
    // corruption detector.
    if config.verify_fraction > 0.0 {
        let threshold = (config.verify_fraction.min(1.0) * 1_000_000.0) as u64;
        let verify_jobs: Vec<SweepJob> = pending_jobs
            .iter()
            .filter(|j| faultnet::splitmix64(j.id.0 ^ fingerprint) % 1_000_000 < threshold)
            .cloned()
            .collect();
        coordinator.stats.verify_jobs = verify_jobs.len();
        for job in &verify_jobs {
            coordinator.verify_pending.insert(job.id.0, None);
        }
        for batch in chunk_batches(&verify_jobs, batch_size) {
            coordinator.pending.push_back(batch);
        }
    }

    // --- plumbing: listener, accept/reader threads, spawned children. ---
    let listener = match &config.listen {
        Some(addr) => {
            TcpListener::bind(addr).map_err(|e| DistError::Io(format!("binding {addr}: {e}")))?
        }
        None => TcpListener::bind("127.0.0.1:0")
            .map_err(|e| DistError::Io(format!("binding loopback: {e}")))?,
    };
    let bound = listener
        .local_addr()
        .map_err(|e| DistError::Io(format!("local_addr: {e}")))?;
    // Spawned workers (and the shutdown self-connect that unblocks the
    // accept loop) must dial a *routable* address: a wildcard bind like
    // 0.0.0.0:7700 is a listen address, not a destination, so map it to
    // the same-family loopback with the bound port.
    let local_addr = routable_addr(bound);

    // The live metrics endpoint: a plaintext Prometheus-style exposition
    // of the coordinator registry folded with the latest worker
    // snapshots, served for the duration of the run.
    let metrics = match &config.metrics_listen {
        Some(addr) => {
            let metrics_listener = TcpListener::bind(addr)
                .map_err(|e| DistError::Io(format!("binding metrics {addr}: {e}")))?;
            let metrics_addr = routable_addr(
                metrics_listener
                    .local_addr()
                    .map_err(|e| DistError::Io(format!("metrics local_addr: {e}")))?,
            );
            let metrics_stop = Arc::new(AtomicBool::new(false));
            {
                let reg = Arc::clone(registry.as_ref().expect("metrics imply a registry"));
                let worker_metrics = Arc::clone(&worker_metrics);
                let stop = Arc::clone(&metrics_stop);
                std::thread::spawn(move || {
                    serve_metrics(&metrics_listener, &reg, &worker_metrics, &stop)
                });
            }
            Some((metrics_addr, metrics_stop))
        }
        None => None,
    };

    let (events_tx, events_rx) = mpsc::channel::<Event>();
    let stop = Arc::new(AtomicBool::new(false));
    {
        let events_tx = events_tx.clone();
        let stop = Arc::clone(&stop);
        let registry = registry.clone();
        let telemetry_flag = config.telemetry;
        let listener = listener
            .try_clone()
            .map_err(|e| DistError::Io(format!("cloning listener: {e}")))?;
        std::thread::spawn(move || {
            let mut next_worker: WorkerId = 0;
            loop {
                let Ok((stream, _)) = listener.accept() else {
                    return;
                };
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let worker = next_worker;
                next_worker += 1;
                let events_tx = events_tx.clone();
                let registry = registry.clone();
                std::thread::spawn(move || {
                    serve_connection(stream, worker, telemetry_flag, registry, &events_tx);
                });
            }
        });
    }

    // Teardown shared by every exit path below — the accept thread,
    // bound ports, metrics server, and spawned children must never
    // outlive this call, even when setup itself fails partway.
    let finish = |coordinator: &mut Coordinator,
                  children: &mut Vec<ChildSlot>,
                  stop: &AtomicBool,
                  local_addr: &str| {
        coordinator.shutdown_workers();
        stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop so its thread exits.
        let _ = TcpStream::connect(local_addr);
        if let Some((metrics_addr, metrics_stop)) = &metrics {
            metrics_stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(metrics_addr);
        }
        reap_children(children);
    };

    let mut children: Vec<ChildSlot> = Vec::new();
    let mut spawned_total = 0usize;
    let binary = if config.spawn_workers > 0 {
        match &config.worker_binary {
            Some(path) => Some(path.clone()),
            None => match default_worker_binary() {
                Ok(path) => Some(path),
                Err(message) => {
                    finish(&mut coordinator, &mut children, &stop, &local_addr);
                    return Err(DistError::WorkerBinary(message));
                }
            },
        }
    } else {
        None
    };
    for k in 0..config.spawn_workers {
        let mut extra = config.worker_extra_args.get(k).cloned().unwrap_or_default();
        if let Some(chaos) = config.chaos {
            extra.extend([
                "--chaos-seed".to_string(),
                faultnet::derive_worker_seed(chaos.seed, k as u64).to_string(),
                "--chaos-profile".to_string(),
                chaos.profile.name.to_string(),
            ]);
        }
        let name = format!("spawned-{k}");
        match spawn_worker(
            binary.as_ref().expect("binary resolved when spawning"),
            &local_addr,
            &name,
            &extra,
        ) {
            Ok(child) => {
                children.push(ChildSlot {
                    name,
                    child,
                    exited: false,
                });
                spawned_total += 1;
            }
            Err(e) => {
                finish(&mut coordinator, &mut children, &stop, &local_addr);
                return Err(e);
            }
        }
    }

    // --- the scheduling loop. -------------------------------------------
    let mut respawns_used = 0usize;
    let mut respawn_queue = 0usize;
    let mut respawn_backoff = RESPAWN_BACKOFF_FLOOR;
    let mut next_respawn_at = Instant::now();
    let mut last_progress = Instant::now();
    let result: Result<(), DistError> = loop {
        if !coordinator.work_outstanding() {
            break Ok(());
        }
        match events_rx.recv_timeout(Duration::from_millis(200)) {
            Ok(Event::Connected {
                worker,
                writer,
                spawned,
                name,
            }) => {
                coordinator.stats.workers_connected += 1;
                coordinator.note(Counter::WorkersConnected);
                coordinator.flight_note("connect", worker, None, name.clone());
                coordinator.workers.insert(
                    worker,
                    WorkerConn {
                        writer,
                        name,
                        spawned,
                        busy: None,
                        last_seen: Instant::now(),
                    },
                );
                coordinator.dispatch(worker);
            }
            Ok(Event::Frame { worker, frame }) => {
                if let Some(conn) = coordinator.workers.get_mut(&worker) {
                    conn.last_seen = Instant::now();
                }
                match frame {
                    Frame::Heartbeat => {
                        // v6: echo the beat so the worker can sample its
                        // round-trip time (it ignores echoes when its own
                        // telemetry is off).
                        if let Some(conn) = coordinator.workers.get_mut(&worker) {
                            let _ = wire::write_frame(&mut conn.writer, &Frame::Heartbeat);
                        }
                    }
                    Frame::Metrics { snapshot } => {
                        // Snapshots are cumulative; the latest one per
                        // worker supersedes everything before it.
                        lock_recovering(
                            &coordinator.worker_metrics,
                            coordinator.telemetry.as_deref(),
                        )
                        .insert(worker, *snapshot);
                    }
                    Frame::Result { result } => {
                        match coordinator.handle_result(worker, *result) {
                            Ok(fresh) => {
                                if fresh {
                                    last_progress = Instant::now();
                                }
                            }
                            Err(e) => break Err(e),
                        }
                        if let Some(limit) = config.abort_after_results {
                            if coordinator.stats.executed_jobs >= limit {
                                break Err(DistError::Aborted {
                                    completed: coordinator.stats.executed_jobs,
                                });
                            }
                        }
                    }
                    Frame::JobFailed { job, error } => {
                        eprintln!(
                            "fleet coordinator: job {job} failed on worker {}: {error}",
                            coordinator
                                .workers
                                .get(&worker)
                                .map_or("?", |c| c.name.as_str()),
                        );
                        coordinator.clear_copy(worker, job);
                        coordinator.note(Counter::PanicStrikes);
                        coordinator.flight_note("job_failed", worker, Some(job), error.to_string());
                        coordinator.flight_dump("panic", job);
                        if matches!(coordinator.strike(job, error), StrikeOutcome::Retry) {
                            // Retry rides at the back so healthy work
                            // drains first; a fresh worker (or the same
                            // one, later) gets another attempt.
                            if let Some(j) = coordinator.jobs_by_id.get(&job).cloned() {
                                coordinator.pending.push_back(vec![j]);
                            }
                        }
                        coordinator.dispatch_idle();
                        // A contained failure is still forward progress:
                        // the worker lives and the job is accounted for.
                        last_progress = Instant::now();
                    }
                    Frame::BatchDone { batch } => {
                        if let Some(conn) = coordinator.workers.get_mut(&worker) {
                            if conn.busy == Some(batch) {
                                conn.busy = None;
                            }
                        }
                        if let Some(fl) = coordinator.inflight.remove(&batch) {
                            // Defensive: anything not delivered and not
                            // stolen goes back on the queue.
                            if !fl.remaining.is_empty() {
                                coordinator
                                    .pending
                                    .push_front(fl.remaining.into_values().collect());
                            }
                        }
                        coordinator.dispatch(worker);
                    }
                    // Workers never send anything else (coordinator-bound
                    // control frames, client-session frames): ignore
                    // rather than trust.
                    _ => {}
                }
            }
            Ok(Event::Disconnected { worker }) => {
                coordinator.lose_worker(worker);
                coordinator.dispatch_idle();
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(DistError::Io("event channel closed".into()));
            }
        }

        // Housekeeping on every iteration (cheap at these event rates).
        let timed_out: Vec<WorkerId> = coordinator
            .workers
            .iter()
            .filter(|(_, c)| c.last_seen.elapsed() > config.heartbeat_timeout)
            .map(|(&id, _)| id)
            .collect();
        for worker in timed_out {
            coordinator.lose_worker(worker);
        }

        // Per-job deadline: a shard that stops yielding results is stuck
        // on its first remaining id (in-shard execution is serial and
        // id-ordered). The job gets a strike, and the worker — which may
        // be wedged in a loop its heartbeat thread happily outlives — is
        // dropped; killing its spawned process routes it through the
        // ordinary crash-respawn path below.
        if let Some(deadline) = config.job_deadline {
            let expired: Vec<u32> = coordinator
                .inflight
                .iter()
                .filter(|(_, fl)| !fl.remaining.is_empty() && fl.last_result.elapsed() > deadline)
                .map(|(&batch, _)| batch)
                .collect();
            for batch in expired {
                let Some(fl) = coordinator.inflight.get(&batch) else {
                    continue;
                };
                let stuck = *fl.remaining.keys().next().expect("filtered non-empty");
                let victim = fl.worker;
                coordinator.stats.deadline_strikes += 1;
                let detail = format!(
                    "no result within {deadline:?} on worker {}",
                    coordinator
                        .workers
                        .get(&victim)
                        .map_or("?", |c| c.name.as_str()),
                );
                coordinator.note(Counter::DeadlineStrikes);
                coordinator.flight_note("deadline", victim, Some(stuck), detail.clone());
                coordinator.flight_dump("deadline", stuck);
                coordinator.strike(
                    stuck,
                    JobError {
                        kind: JobErrorKind::Deadline,
                        detail,
                    },
                );
                if let Some(name) = coordinator.lose_worker(victim) {
                    for slot in children.iter_mut() {
                        if slot.name == name && !slot.exited {
                            // Reaped (and respawned) by try_wait below.
                            let _ = slot.child.kill();
                        }
                    }
                }
                last_progress = Instant::now();
            }
        }

        for slot in &mut children {
            if slot.exited {
                continue;
            }
            if let Ok(Some(status)) = slot.child.try_wait() {
                slot.exited = true;
                if !status.success() && coordinator.work_outstanding() {
                    respawn_queue += 1;
                }
            }
        }
        // Drain the respawn queue. A failed attempt consumes one unit of
        // the budget and is retried after a bounded backoff — never
        // written off wholesale, so a transiently missing binary or a
        // brief fork failure costs attempts, not the whole budget.
        while respawn_queue > 0
            && coordinator.work_outstanding()
            && respawns_used < config.max_respawns
            && Instant::now() >= next_respawn_at
        {
            respawns_used += 1;
            let name = format!("spawned-{spawned_total}");
            match spawn_worker(
                binary.as_ref().expect("respawn implies spawned workers"),
                &local_addr,
                &name,
                &config.respawn_extra_args,
            ) {
                Ok(child) => {
                    spawned_total += 1;
                    respawn_queue -= 1;
                    respawn_backoff = RESPAWN_BACKOFF_FLOOR;
                    coordinator.stats.workers_respawned += 1;
                    children.push(ChildSlot {
                        name,
                        child,
                        exited: false,
                    });
                }
                Err(e) => {
                    coordinator.stats.respawn_failures += 1;
                    next_respawn_at = Instant::now() + respawn_backoff;
                    eprintln!(
                        "fleet coordinator: respawn failed ({respawns_used} of {} budget used, \
                         retrying in {respawn_backoff:?}): {e}",
                        config.max_respawns,
                    );
                    respawn_backoff = (respawn_backoff * 2).min(RESPAWN_BACKOFF_CEIL);
                    break;
                }
            }
        }
        coordinator.dispatch_idle();

        if let Some(reg) = &coordinator.telemetry {
            reg.set_gauge(Gauge::LiveWorkers, coordinator.workers.len() as u64);
            reg.set_gauge(Gauge::PendingBatches, coordinator.pending.len() as u64);
            reg.set_gauge(Gauge::InflightBatches, coordinator.inflight.len() as u64);
        }

        if coordinator.workers.is_empty()
            && children.iter().all(|slot| slot.exited)
            && config.listen.is_none()
            && (respawn_queue == 0 || respawns_used >= config.max_respawns)
        {
            break Err(DistError::NoWorkers(
                "every spawned worker exited and the respawn budget is spent".into(),
            ));
        }
        if last_progress.elapsed() > config.stall_timeout {
            break Err(DistError::Stalled {
                completed: coordinator.done.len(),
                total: coordinator.total,
            });
        }
    };

    finish(&mut coordinator, &mut children, &stop, &local_addr);
    result?;
    // Fold the coordinator's own registry with the final cumulative
    // snapshot of every worker, in worker-id order — deterministic
    // regardless of the order snapshots arrived in.
    let telemetry = registry.as_ref().map(|reg| {
        let mut folded = reg.snapshot();
        let workers = lock_recovering(&worker_metrics, Some(reg));
        for snap in workers.values() {
            folded.merge(snap);
        }
        folded
    });
    Ok(DistReport {
        store: ResultStore::new(coordinator.done.into_values().collect()),
        stats: coordinator.stats,
        quarantine: QuarantineManifest::new(coordinator.quarantined.into_values().collect()),
        telemetry,
    })
}

/// Maps a bound socket address to one a client can dial: wildcard binds
/// (`0.0.0.0`, `[::]`) become the same-family loopback with the bound
/// port; anything else round-trips unchanged.
pub(crate) fn routable_addr(bound: std::net::SocketAddr) -> String {
    if bound.ip().is_unspecified() {
        let loopback: std::net::IpAddr = if bound.is_ipv4() {
            std::net::Ipv4Addr::LOCALHOST.into()
        } else {
            std::net::Ipv6Addr::LOCALHOST.into()
        };
        std::net::SocketAddr::new(loopback, bound.port()).to_string()
    } else {
        bound.to_string()
    }
}

/// The metrics endpoint thread: answers every connection with a
/// Prometheus-style plaintext exposition of the coordinator registry
/// folded with the latest worker snapshots. Exits on the stop flag (the
/// coordinator self-connects to unblock the accept).
fn serve_metrics(
    listener: &TcpListener,
    registry: &Registry,
    worker_metrics: &Mutex<BTreeMap<WorkerId, Snapshot>>,
    stop: &AtomicBool,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        // Drain (best-effort) whatever request line the client sent; the
        // endpoint serves one document regardless of the path.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let mut request = [0u8; 1024];
        let _ = std::io::Read::read(&mut stream, &mut request);
        let mut folded = registry.snapshot();
        {
            let workers = lock_recovering(worker_metrics, Some(registry));
            for snap in workers.values() {
                folded.merge(snap);
            }
        }
        let body = folded.to_prometheus();
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        );
        let _ = std::io::Write::write_all(&mut stream, response.as_bytes());
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// Per-connection thread: handshake, then pump frames into the event
/// channel until the socket dies.
fn serve_connection(
    mut stream: TcpStream,
    worker: WorkerId,
    telemetry: bool,
    registry: Option<Arc<Registry>>,
    events: &mpsc::Sender<Event>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let hello = match wire::read_frame(&mut stream) {
        Ok(Frame::Hello {
            version,
            spawned,
            name,
        }) => {
            if version != PROTOCOL_VERSION {
                let _ = wire::write_frame(
                    &mut stream,
                    &Frame::Reject {
                        reason: format!(
                            "protocol version {version} != coordinator {PROTOCOL_VERSION}"
                        ),
                    },
                );
                return;
            }
            (spawned, name)
        }
        _ => return, // not a worker; drop silently
    };
    if wire::write_frame(
        &mut stream,
        &Frame::Welcome {
            version: PROTOCOL_VERSION,
            telemetry,
        },
    )
    .is_err()
    {
        return;
    }
    let _ = stream.set_read_timeout(None);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if events
        .send(Event::Connected {
            worker,
            writer,
            spawned: hello.0,
            name: hello.1,
        })
        .is_err()
    {
        return;
    }
    loop {
        match wire::read_frame_recorded(&mut stream, registry.as_deref()) {
            Ok(frame) => {
                if events.send(Event::Frame { worker, frame }).is_err() {
                    return;
                }
            }
            Err(WireError::Io(_))
            | Err(WireError::FrameTooLarge(_))
            | Err(WireError::Malformed(_)) => {
                let _ = events.send(Event::Disconnected { worker });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zhuyi_fleet::SweepPlan;

    fn plan(jobs: usize) -> Vec<SweepJob> {
        let plan = SweepPlan::builder()
            .scenarios([av_scenarios::catalog::ScenarioId::CutOut])
            .seeds(0..jobs as u64)
            .probe(4.0, false)
            .build();
        plan.jobs().to_vec()
    }

    #[test]
    fn batches_chunk_contiguously_and_cover_everything() {
        let jobs = plan(10);
        let batches = chunk_batches(&jobs, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let flat: Vec<u64> = batches.iter().flatten().map(|j| j.id.0).collect();
        assert_eq!(flat, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn default_batch_size_balances_without_degenerating() {
        assert_eq!(default_batch_size(160, 4), 10);
        assert_eq!(default_batch_size(3, 4), 1);
        assert_eq!(default_batch_size(0, 4), 1);
        // External-only coordinators assume an 8-worker fleet.
        assert_eq!(default_batch_size(96, 0), 3);
    }

    #[test]
    fn zero_workers_without_listen_is_rejected_up_front() {
        let plan = SweepPlan::builder()
            .scenarios([av_scenarios::catalog::ScenarioId::CutOut])
            .seeds([0])
            .probe(4.0, false)
            .build();
        let config = DistConfig {
            spawn_workers: 0,
            ..DistConfig::default()
        };
        assert!(matches!(
            run_distributed(&plan, &config),
            Err(DistError::NoWorkers(_))
        ));
    }
}
