//! Parsing and validation of the distribution CLI flags (`--workers`,
//! `--connect`, `--checkpoint`, `--listen`, `--batch`), shared by
//! `fleet_sweep` and `fleet_shard` so both reject malformed values with
//! the same clear messages (and a non-zero exit code, pinned by
//! `tests/cli_validation.rs`).

use std::path::PathBuf;

/// Parses a `--workers` value: a base-10 process count, `>= 1`.
///
/// # Errors
///
/// A human-readable message for non-numeric or zero values.
pub fn parse_workers(spec: &str) -> Result<usize, String> {
    let workers: usize = spec
        .trim()
        .parse()
        .map_err(|_| format!("--workers expects a whole number, got {spec:?}"))?;
    if workers == 0 {
        return Err(
            "--workers must be >= 1 (use --listen to run with only external workers)".to_string(),
        );
    }
    Ok(workers)
}

/// Parses a `--connect`/`--listen` value: syntactically a `host:port`
/// pair (non-empty host, valid `u16` port). The *original string* is
/// returned and DNS resolution is deliberately deferred to connect/bind
/// time — a worker started while the resolver is briefly unavailable
/// must fall into the connect retry loop, not die with a syntax error.
///
/// # Errors
///
/// A human-readable message naming the flag for port-less or
/// malformed-port addresses.
pub fn parse_addr(flag: &str, spec: &str) -> Result<String, String> {
    let spec = spec.trim();
    let well_formed = spec
        .rsplit_once(':')
        .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok());
    if well_formed {
        Ok(spec.to_string())
    } else {
        Err(format!(
            "{flag} expects host:port (e.g. 127.0.0.1:7700), got {spec:?}"
        ))
    }
}

/// Parses a `--checkpoint` value: a file path whose parent directory
/// exists (the file itself may not yet — first runs create it).
///
/// # Errors
///
/// A human-readable message for empty paths or missing parent
/// directories.
pub fn parse_checkpoint(spec: &str) -> Result<PathBuf, String> {
    if spec.trim().is_empty() {
        return Err("--checkpoint expects a file path".to_string());
    }
    let path = PathBuf::from(spec);
    let parent = match path.parent() {
        None => std::path::Path::new("."),
        Some(p) if p.as_os_str().is_empty() => std::path::Path::new("."),
        Some(p) => p,
    };
    if !parent.is_dir() {
        return Err(format!(
            "--checkpoint directory {} does not exist",
            parent.display()
        ));
    }
    Ok(path)
}

/// Parses a `--journal` value: the daemon's write-ahead log path, whose
/// parent directory exists (the file itself may not yet — a fresh daemon
/// creates it, a restarted one replays it).
///
/// # Errors
///
/// A human-readable message for empty paths or missing parent
/// directories.
pub fn parse_journal(spec: &str) -> Result<PathBuf, String> {
    if spec.trim().is_empty() {
        return Err("--journal expects a file path".to_string());
    }
    let path = PathBuf::from(spec);
    let parent = match path.parent() {
        None => std::path::Path::new("."),
        Some(p) if p.as_os_str().is_empty() => std::path::Path::new("."),
        Some(p) => p,
    };
    if !parent.is_dir() {
        return Err(format!(
            "--journal directory {} does not exist",
            parent.display()
        ));
    }
    Ok(path)
}

/// Parses a `--max-queue` value: the daemon's admission bound, `>= 1`
/// (a zero-slot queue could never admit anything — the daemon would
/// answer `Busy` forever).
///
/// # Errors
///
/// A human-readable message for non-numeric or zero values.
pub fn parse_max_queue(spec: &str) -> Result<usize, String> {
    let n: usize = spec
        .trim()
        .parse()
        .map_err(|_| format!("--max-queue expects a whole number, got {spec:?}"))?;
    if n == 0 {
        return Err("--max-queue must be >= 1".to_string());
    }
    Ok(n)
}

/// Parses a `--lease-secs` value: plan lease duration in seconds, `>= 1`.
///
/// # Errors
///
/// A human-readable message for non-numeric or zero values.
pub fn parse_lease_secs(spec: &str) -> Result<u64, String> {
    let n: u64 = spec
        .trim()
        .parse()
        .map_err(|_| format!("--lease-secs expects a whole number, got {spec:?}"))?;
    if n == 0 {
        return Err("--lease-secs must be >= 1".to_string());
    }
    Ok(n)
}

/// Parses a `--retry-max` value: extra submit attempts after the first
/// (`0` = exactly one try, no retries).
///
/// # Errors
///
/// A human-readable message for non-numeric values.
pub fn parse_retry_max(spec: &str) -> Result<u32, String> {
    spec.trim()
        .parse()
        .map_err(|_| format!("--retry-max expects a whole number (0 = no retries), got {spec:?}"))
}

/// Parses a `--retry-base-ms` value: first backoff delay in
/// milliseconds, `>= 1` (the exponential ladder and jitter are both
/// multiples of it).
///
/// # Errors
///
/// A human-readable message for non-numeric or zero values.
pub fn parse_retry_base_ms(spec: &str) -> Result<u64, String> {
    let n: u64 = spec
        .trim()
        .parse()
        .map_err(|_| format!("--retry-base-ms expects a whole number, got {spec:?}"))?;
    if n == 0 {
        return Err("--retry-base-ms must be >= 1".to_string());
    }
    Ok(n)
}

/// Parses a `--batch` value: jobs per shard, `>= 1`.
///
/// # Errors
///
/// A human-readable message for non-numeric or zero values.
pub fn parse_batch(spec: &str) -> Result<usize, String> {
    let batch: usize = spec
        .trim()
        .parse()
        .map_err(|_| format!("--batch expects a whole number, got {spec:?}"))?;
    if batch == 0 {
        return Err("--batch must be >= 1".to_string());
    }
    Ok(batch)
}

/// Parses a `--batch-lanes` value: candidate-rate lanes per lockstep
/// minimum-safe-FPR pass. `0` means auto (the full candidate grid in one
/// pass), `1` selects the per-rate reference search, `N >= 2` batches
/// `N` lanes at a time — every setting exports identical bytes.
///
/// # Errors
///
/// A human-readable message for non-numeric values.
pub fn parse_batch_lanes(spec: &str) -> Result<usize, String> {
    spec.trim()
        .parse()
        .map_err(|_| format!("--batch-lanes expects a whole number (0 = auto), got {spec:?}"))
}

/// Parses a `--seed-blocks` value: how many consecutive minimum-safe-FPR
/// jobs a worker advances through one seed-batched lockstep loop. `0`
/// and `1` keep per-job granularity; `N >= 2` groups up to `N` jobs —
/// every setting exports identical bytes.
///
/// # Errors
///
/// A human-readable message for non-numeric values.
pub fn parse_seed_blocks(spec: &str) -> Result<usize, String> {
    spec.trim()
        .parse()
        .map_err(|_| format!("--seed-blocks expects a whole number (0/1 = per-job), got {spec:?}"))
}

/// Parses a `--fail-after` value (worker fault injection): `>= 1`.
///
/// # Errors
///
/// A human-readable message for non-numeric or zero values.
pub fn parse_fail_after(spec: &str) -> Result<u32, String> {
    let n: u32 = spec
        .trim()
        .parse()
        .map_err(|_| format!("--fail-after expects a whole number, got {spec:?}"))?;
    if n == 0 {
        return Err("--fail-after must be >= 1".to_string());
    }
    Ok(n)
}

/// Parses a `--chaos-seed` value: the base seed of the deterministic
/// fault stream (each worker derives its own from it).
///
/// # Errors
///
/// A human-readable message for non-numeric values.
pub fn parse_chaos_seed(spec: &str) -> Result<u64, String> {
    spec.trim()
        .parse()
        .map_err(|_| format!("--chaos-seed expects a whole number, got {spec:?}"))
}

/// Parses a `--chaos-profile` value against the named profiles in
/// [`crate::faultnet::PROFILES`].
///
/// # Errors
///
/// A human-readable message listing the valid names.
pub fn parse_chaos_profile(spec: &str) -> Result<&'static crate::faultnet::ChaosProfile, String> {
    crate::faultnet::profile(spec.trim()).ok_or_else(|| {
        let names: Vec<&str> = crate::faultnet::PROFILES.iter().map(|p| p.name).collect();
        format!(
            "--chaos-profile expects one of {}, got {spec:?}",
            names.join("/")
        )
    })
}

/// Parses a `--max-job-failures` value (the quarantine strike limit K):
/// `>= 1`.
///
/// # Errors
///
/// A human-readable message for non-numeric or zero values.
pub fn parse_max_job_failures(spec: &str) -> Result<usize, String> {
    let k: usize = spec
        .trim()
        .parse()
        .map_err(|_| format!("--max-job-failures expects a whole number, got {spec:?}"))?;
    if k == 0 {
        return Err("--max-job-failures must be >= 1".to_string());
    }
    Ok(k)
}

/// Parses a `--verify-fraction` value: the fraction of jobs sampled for
/// duplicate-execution cross-checking, a finite number in `0..=1`.
///
/// # Errors
///
/// A human-readable message for non-numeric, non-finite, or
/// out-of-range values.
pub fn parse_verify_fraction(spec: &str) -> Result<f64, String> {
    let fraction: f64 = spec
        .trim()
        .parse()
        .map_err(|_| format!("--verify-fraction expects a number in 0..=1, got {spec:?}"))?;
    if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
        return Err(format!(
            "--verify-fraction must be within 0..=1, got {spec:?}"
        ));
    }
    Ok(fraction)
}

/// The distribution-relevant subset of `fleet_sweep` flags, checked for
/// internal consistency by [`validate_dist_flags`].
#[derive(Debug, Clone, Default)]
pub struct DistFlags {
    /// `--dist` was given.
    pub dist: bool,
    /// `--connect ADDR` was given (worker mode).
    pub connect: Option<String>,
    /// `--listen ADDR` was given.
    pub listen: Option<String>,
    /// `--checkpoint PATH` was given.
    pub checkpoint: Option<PathBuf>,
    /// `--batch N` was given.
    pub batch: Option<usize>,
    /// `--chaos-seed N` was given.
    pub chaos_seed: bool,
    /// `--chaos-profile NAME` was given.
    pub chaos_profile: bool,
    /// `--max-job-failures K` was given.
    pub max_job_failures: bool,
    /// `--verify-fraction F` was given.
    pub verify_fraction: bool,
    /// `--fail-after N` was given (spawned-worker fault injection).
    pub fail_after: bool,
    /// `--telemetry` was given.
    pub telemetry: bool,
    /// `--telemetry-out NAME` was given.
    pub telemetry_out: bool,
    /// `--metrics-listen ADDR` was given.
    pub metrics_listen: bool,
    /// Export/reporting flags that a worker cannot honor (`--csv`,
    /// `--json`, `--traces`, `--baseline`), by flag name.
    pub export_flags: Vec<String>,
    /// `--daemon` was given (persistent sweep service).
    pub daemon: bool,
    /// `--journal PATH` was given (daemon write-ahead log).
    pub journal: Option<PathBuf>,
    /// `--submit ADDR` was given (client mode: run the plan through a
    /// daemon at `ADDR`).
    pub submit: Option<String>,
    /// `--drain` was given (client mode: ask the daemon to finish and
    /// exit).
    pub drain: bool,
    /// `--max-queue N` was given (daemon admission bound).
    pub max_queue: bool,
    /// `--lease-secs N` was given (daemon plan leases).
    pub lease_secs: bool,
    /// `--retry-max N` was given (client retry budget).
    pub retry_max: bool,
    /// `--retry-base-ms N` was given (client backoff base).
    pub retry_base_ms: bool,
}

/// Cross-flag validation for the distribution modes: `--connect` turns
/// the process into a worker (which exports nothing and coordinates
/// nothing), `--listen`/`--checkpoint`/`--batch` only make sense on a
/// `--dist` coordinator, `--daemon` is the persistent service (requires
/// `--listen` and `--journal`), and `--submit` is the client side of the
/// daemon (mutually exclusive with running any sweep locally).
///
/// # Errors
///
/// A human-readable message naming the conflicting flags.
pub fn validate_dist_flags(flags: &DistFlags) -> Result<(), String> {
    if let Some(addr) = &flags.connect {
        if flags.dist {
            return Err(
                "--connect joins another coordinator; it cannot be combined with --dist"
                    .to_string(),
            );
        }
        if flags.listen.is_some() {
            return Err("--connect and --listen are mutually exclusive".to_string());
        }
        for (value, flag) in [
            (flags.daemon, "--daemon"),
            (flags.submit.is_some(), "--submit"),
            (flags.journal.is_some(), "--journal"),
            (flags.drain, "--drain"),
            (flags.max_queue, "--max-queue"),
            (flags.lease_secs, "--lease-secs"),
            (flags.retry_max, "--retry-max"),
            (flags.retry_base_ms, "--retry-base-ms"),
        ] {
            if value {
                return Err(format!(
                    "{flag} does not apply to a --connect worker (workers neither run \
                     the daemon nor submit to it)"
                ));
            }
        }
        if flags.checkpoint.is_some() {
            return Err(
                "--checkpoint belongs to the coordinator, not a --connect worker".to_string(),
            );
        }
        if flags.batch.is_some() {
            return Err("--batch belongs to the coordinator, not a --connect worker".to_string());
        }
        for (value, flag) in [
            (flags.chaos_seed, "--chaos-seed"),
            (flags.chaos_profile, "--chaos-profile"),
            (flags.max_job_failures, "--max-job-failures"),
            (flags.verify_fraction, "--verify-fraction"),
            (flags.fail_after, "--fail-after"),
        ] {
            if value {
                return Err(format!(
                    "{flag} belongs to the coordinator, not a --connect worker \
                     (use fleet_shard's own fault flags to perturb a single worker)"
                ));
            }
        }
        for (value, flag) in [
            (flags.telemetry, "--telemetry"),
            (flags.telemetry_out, "--telemetry-out"),
            (flags.metrics_listen, "--metrics-listen"),
        ] {
            if value {
                return Err(format!(
                    "{flag} belongs to the coordinator, not a --connect worker \
                     (workers are told to collect telemetry in the Welcome handshake)"
                ));
            }
        }
        if let Some(flag) = flags.export_flags.first() {
            return Err(format!(
                "{flag} does not apply to a --connect worker (the coordinator at {addr} owns \
                 all exports)"
            ));
        }
        return Ok(());
    }
    if flags.daemon {
        if flags.submit.is_some() {
            return Err("--daemon and --submit are mutually exclusive".to_string());
        }
        if flags.dist {
            return Err("--daemon is its own mode; it cannot be combined with --dist".to_string());
        }
        if flags.listen.is_none() {
            return Err("--daemon requires --listen (the service address)".to_string());
        }
        if flags.journal.is_none() {
            return Err(
                "--daemon requires --journal (durability is the point of the daemon)".to_string(),
            );
        }
        if flags.checkpoint.is_some() {
            return Err(
                "--checkpoint belongs to a one-shot --dist run; the daemon journals instead"
                    .to_string(),
            );
        }
        for (value, flag) in [
            (flags.drain, "--drain"),
            (flags.retry_max, "--retry-max"),
            (flags.retry_base_ms, "--retry-base-ms"),
        ] {
            if value {
                return Err(format!(
                    "{flag} is a --submit client operation, not a --daemon one"
                ));
            }
        }
        for (value, flag) in [
            (flags.chaos_seed, "--chaos-seed"),
            (flags.chaos_profile, "--chaos-profile"),
            (flags.verify_fraction, "--verify-fraction"),
            (flags.fail_after, "--fail-after"),
            (flags.telemetry_out, "--telemetry-out"),
            (flags.metrics_listen, "--metrics-listen"),
        ] {
            if value {
                return Err(format!("{flag} is not supported in --daemon mode"));
            }
        }
        if let Some(flag) = flags.export_flags.first() {
            return Err(format!(
                "{flag} does not apply to --daemon (results are fetched by --submit clients)"
            ));
        }
        return Ok(());
    }
    if let Some(addr) = &flags.submit {
        if flags.dist {
            return Err(format!(
                "--submit sends the plan to the daemon at {addr}; it cannot be combined \
                 with --dist"
            ));
        }
        if flags.listen.is_some() {
            return Err("--listen belongs to the daemon, not a --submit client".to_string());
        }
        if flags.checkpoint.is_some() {
            return Err(
                "--checkpoint does not apply to --submit (the daemon's journal is the \
                 durability layer)"
                    .to_string(),
            );
        }
        if flags.journal.is_some() {
            return Err("--journal belongs to the daemon, not a --submit client".to_string());
        }
        for (value, flag) in [
            (flags.batch.is_some(), "--batch"),
            (flags.max_queue, "--max-queue"),
            (flags.lease_secs, "--lease-secs"),
            (flags.max_job_failures, "--max-job-failures"),
            (flags.verify_fraction, "--verify-fraction"),
            (flags.fail_after, "--fail-after"),
            (flags.telemetry, "--telemetry"),
            (flags.telemetry_out, "--telemetry-out"),
            (flags.metrics_listen, "--metrics-listen"),
        ] {
            if value {
                return Err(format!(
                    "{flag} belongs to the daemon or coordinator, not a --submit client"
                ));
            }
        }
        // Chaos flags ARE allowed with --submit: they perturb the
        // client→daemon link (the retry/backoff story under test).
        if flags.chaos_profile && !flags.chaos_seed {
            return Err(
                "--chaos-profile requires --chaos-seed (the fault stream is seeded)".to_string(),
            );
        }
        return Ok(());
    }
    // Neither worker, daemon, nor client: the daemon/client knobs are
    // orphans here.
    for (value, flag, owner) in [
        (flags.journal.is_some(), "--journal", "--daemon"),
        (flags.max_queue, "--max-queue", "--daemon"),
        (flags.lease_secs, "--lease-secs", "--daemon"),
        (flags.drain, "--drain", "--submit"),
        (flags.retry_max, "--retry-max", "--submit"),
        (flags.retry_base_ms, "--retry-base-ms", "--submit"),
    ] {
        if value {
            return Err(format!("{flag} requires {owner}"));
        }
    }
    if !flags.dist {
        for (value, flag) in [
            (flags.listen.is_some(), "--listen"),
            (flags.checkpoint.is_some(), "--checkpoint"),
            (flags.batch.is_some(), "--batch"),
            (flags.chaos_seed, "--chaos-seed"),
            (flags.chaos_profile, "--chaos-profile"),
            (flags.max_job_failures, "--max-job-failures"),
            (flags.verify_fraction, "--verify-fraction"),
            (flags.fail_after, "--fail-after"),
            (flags.metrics_listen, "--metrics-listen"),
        ] {
            if value {
                return Err(format!("{flag} requires --dist"));
            }
        }
    }
    if flags.chaos_profile && !flags.chaos_seed {
        return Err(
            "--chaos-profile requires --chaos-seed (the fault stream is seeded)".to_string(),
        );
    }
    if flags.telemetry_out && !flags.telemetry {
        return Err(
            "--telemetry-out requires --telemetry (nothing to write otherwise)".to_string(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_must_be_a_positive_count() {
        assert_eq!(parse_workers("4"), Ok(4));
        assert_eq!(parse_workers(" 2 "), Ok(2));
        assert!(parse_workers("0").is_err());
        assert!(parse_workers("-1").is_err());
        assert!(parse_workers("two").is_err());
        assert!(parse_workers("").is_err());
    }

    #[test]
    fn addresses_need_host_and_port() {
        assert_eq!(
            parse_addr("--connect", "127.0.0.1:7700"),
            Ok("127.0.0.1:7700".to_string())
        );
        assert_eq!(
            parse_addr("--listen", "localhost:0"),
            Ok("localhost:0".to_string())
        );
        // Resolution is deferred to connect time: a well-formed but
        // (currently) unresolvable host must parse, so workers retry
        // instead of dying with a syntax error.
        assert!(parse_addr("--connect", "coord-host.invalid:7700").is_ok());
        assert!(parse_addr("--listen", "[::1]:7700").is_ok());
        let err = parse_addr("--connect", "127.0.0.1").expect_err("port required");
        assert!(err.contains("--connect"), "message names the flag: {err}");
        assert!(parse_addr("--connect", "not a host:port").is_err());
        assert!(parse_addr("--connect", "").is_err());
    }

    #[test]
    fn checkpoint_paths_need_an_existing_directory() {
        assert!(parse_checkpoint("ckpt.bin").is_ok(), "cwd-relative is fine");
        let tmp = std::env::temp_dir().join("ckpt.bin");
        assert!(parse_checkpoint(tmp.to_str().expect("utf-8 temp dir")).is_ok());
        assert!(parse_checkpoint("").is_err());
        let err = parse_checkpoint("/no/such/dir/anywhere/ckpt.bin").expect_err("missing dir");
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn batch_and_fail_after_are_positive_counts() {
        assert_eq!(parse_batch("8"), Ok(8));
        assert!(parse_batch("0").is_err());
        assert!(parse_batch("x").is_err());
        assert_eq!(parse_fail_after("3"), Ok(3));
        assert!(parse_fail_after("0").is_err());
        assert!(parse_fail_after("3.5").is_err());
    }

    #[test]
    fn chaos_and_verify_values_are_validated() {
        assert_eq!(parse_chaos_seed("42"), Ok(42));
        assert!(parse_chaos_seed("-3").is_err());
        assert!(parse_chaos_seed("many").is_err());
        assert_eq!(parse_chaos_profile("storm").map(|p| p.name), Ok("storm"));
        assert_eq!(parse_chaos_profile(" mild ").map(|p| p.name), Ok("mild"));
        let err = parse_chaos_profile("hurricane").expect_err("unknown profile");
        assert!(err.contains("storm"), "message lists valid names: {err}");
        assert_eq!(parse_max_job_failures("3"), Ok(3));
        assert!(parse_max_job_failures("0").is_err());
        assert!(parse_max_job_failures("k").is_err());
        assert_eq!(parse_verify_fraction("0.25"), Ok(0.25));
        assert_eq!(parse_verify_fraction("1"), Ok(1.0));
        assert_eq!(parse_verify_fraction("0"), Ok(0.0));
        assert!(parse_verify_fraction("1.5").is_err());
        assert!(parse_verify_fraction("-0.1").is_err());
        assert!(parse_verify_fraction("nan").is_err());
        assert!(parse_verify_fraction("inf").is_err());
        assert!(parse_verify_fraction("lots").is_err());
    }

    #[test]
    fn chaos_flags_require_dist_and_a_seed() {
        for flags in [
            DistFlags {
                chaos_seed: true,
                ..DistFlags::default()
            },
            DistFlags {
                max_job_failures: true,
                ..DistFlags::default()
            },
            DistFlags {
                verify_fraction: true,
                ..DistFlags::default()
            },
            DistFlags {
                fail_after: true,
                ..DistFlags::default()
            },
        ] {
            let err = validate_dist_flags(&flags).expect_err("requires --dist");
            assert!(err.contains("--dist"), "{err}");
        }
        let profile_without_seed = DistFlags {
            dist: true,
            chaos_profile: true,
            ..DistFlags::default()
        };
        let err = validate_dist_flags(&profile_without_seed).expect_err("needs a seed");
        assert!(err.contains("--chaos-seed"), "{err}");
        let ok = DistFlags {
            dist: true,
            chaos_seed: true,
            chaos_profile: true,
            max_job_failures: true,
            verify_fraction: true,
            fail_after: true,
            ..DistFlags::default()
        };
        assert_eq!(validate_dist_flags(&ok), Ok(()));
        let worker = DistFlags {
            connect: Some("127.0.0.1:7700".into()),
            chaos_seed: true,
            ..DistFlags::default()
        };
        let err = validate_dist_flags(&worker).expect_err("worker rejects chaos flags");
        assert!(err.contains("coordinator"), "{err}");
    }

    #[test]
    fn coordinator_only_flags_require_dist() {
        let ok = DistFlags {
            dist: true,
            checkpoint: Some(PathBuf::from("ckpt.bin")),
            batch: Some(4),
            listen: Some("127.0.0.1:0".into()),
            ..DistFlags::default()
        };
        assert_eq!(validate_dist_flags(&ok), Ok(()));
        for flags in [
            DistFlags {
                checkpoint: Some(PathBuf::from("ckpt.bin")),
                ..DistFlags::default()
            },
            DistFlags {
                listen: Some("127.0.0.1:0".into()),
                ..DistFlags::default()
            },
            DistFlags {
                batch: Some(4),
                ..DistFlags::default()
            },
        ] {
            let err = validate_dist_flags(&flags).expect_err("requires --dist");
            assert!(err.contains("--dist"), "{err}");
        }
    }

    #[test]
    fn telemetry_flags_are_cross_checked() {
        // --telemetry alone is fine for a local (non-dist) sweep.
        let local = DistFlags {
            telemetry: true,
            ..DistFlags::default()
        };
        assert_eq!(validate_dist_flags(&local), Ok(()));
        // --telemetry-out without --telemetry has nothing to write.
        let orphan_out = DistFlags {
            telemetry_out: true,
            ..DistFlags::default()
        };
        let err = validate_dist_flags(&orphan_out).expect_err("needs --telemetry");
        assert!(err.contains("--telemetry"), "{err}");
        // --metrics-listen serves the live coordinator; local pools have
        // no coordinator to observe.
        let orphan_listen = DistFlags {
            metrics_listen: true,
            ..DistFlags::default()
        };
        let err = validate_dist_flags(&orphan_listen).expect_err("needs --dist");
        assert!(err.contains("--dist"), "{err}");
        let full = DistFlags {
            dist: true,
            telemetry: true,
            telemetry_out: true,
            metrics_listen: true,
            ..DistFlags::default()
        };
        assert_eq!(validate_dist_flags(&full), Ok(()));
        // A --connect worker takes telemetry orders from the Welcome
        // frame, not from its own flags.
        for flags in [
            DistFlags {
                connect: Some("127.0.0.1:7700".into()),
                telemetry: true,
                ..DistFlags::default()
            },
            DistFlags {
                connect: Some("127.0.0.1:7700".into()),
                metrics_listen: true,
                ..DistFlags::default()
            },
        ] {
            let err = validate_dist_flags(&flags).expect_err("worker rejects telemetry flags");
            assert!(err.contains("coordinator"), "{err}");
        }
    }

    #[test]
    fn daemon_mode_requires_listen_and_journal() {
        let ok = DistFlags {
            daemon: true,
            listen: Some("127.0.0.1:0".into()),
            journal: Some(PathBuf::from("fleet.journal")),
            max_queue: true,
            lease_secs: true,
            telemetry: true,
            batch: Some(4),
            max_job_failures: true,
            ..DistFlags::default()
        };
        assert_eq!(validate_dist_flags(&ok), Ok(()));
        let no_listen = DistFlags {
            daemon: true,
            journal: Some(PathBuf::from("fleet.journal")),
            ..DistFlags::default()
        };
        let err = validate_dist_flags(&no_listen).expect_err("needs --listen");
        assert!(err.contains("--listen"), "{err}");
        let no_journal = DistFlags {
            daemon: true,
            listen: Some("127.0.0.1:0".into()),
            ..DistFlags::default()
        };
        let err = validate_dist_flags(&no_journal).expect_err("needs --journal");
        assert!(err.contains("--journal"), "{err}");
        for conflict in [
            DistFlags {
                dist: true,
                ..ok.clone()
            },
            DistFlags {
                submit: Some("127.0.0.1:7700".into()),
                ..ok.clone()
            },
            DistFlags {
                checkpoint: Some(PathBuf::from("ckpt.bin")),
                ..ok.clone()
            },
            DistFlags {
                drain: true,
                ..ok.clone()
            },
            DistFlags {
                export_flags: vec!["--json".into()],
                ..ok.clone()
            },
        ] {
            assert!(validate_dist_flags(&conflict).is_err(), "{conflict:?}");
        }
    }

    #[test]
    fn submit_mode_is_a_pure_client() {
        let ok = DistFlags {
            submit: Some("127.0.0.1:7700".into()),
            drain: true,
            retry_max: true,
            retry_base_ms: true,
            chaos_seed: true,
            chaos_profile: true,
            export_flags: vec!["--json".into()],
            ..DistFlags::default()
        };
        assert_eq!(validate_dist_flags(&ok), Ok(()));
        for conflict in [
            DistFlags {
                dist: true,
                ..ok.clone()
            },
            DistFlags {
                listen: Some("127.0.0.1:0".into()),
                ..ok.clone()
            },
            DistFlags {
                checkpoint: Some(PathBuf::from("ckpt.bin")),
                ..ok.clone()
            },
            DistFlags {
                journal: Some(PathBuf::from("fleet.journal")),
                ..ok.clone()
            },
            DistFlags {
                telemetry: true,
                ..ok.clone()
            },
        ] {
            assert!(validate_dist_flags(&conflict).is_err(), "{conflict:?}");
        }
        // Chaos on the submit link still needs its seed.
        let profile_only = DistFlags {
            submit: Some("127.0.0.1:7700".into()),
            chaos_profile: true,
            ..DistFlags::default()
        };
        let err = validate_dist_flags(&profile_only).expect_err("needs a seed");
        assert!(err.contains("--chaos-seed"), "{err}");
    }

    #[test]
    fn daemon_client_knobs_require_their_mode() {
        for (flags, owner) in [
            (
                DistFlags {
                    journal: Some(PathBuf::from("fleet.journal")),
                    ..DistFlags::default()
                },
                "--daemon",
            ),
            (
                DistFlags {
                    max_queue: true,
                    ..DistFlags::default()
                },
                "--daemon",
            ),
            (
                DistFlags {
                    lease_secs: true,
                    ..DistFlags::default()
                },
                "--daemon",
            ),
            (
                DistFlags {
                    drain: true,
                    ..DistFlags::default()
                },
                "--submit",
            ),
            (
                DistFlags {
                    retry_max: true,
                    ..DistFlags::default()
                },
                "--submit",
            ),
            (
                DistFlags {
                    retry_base_ms: true,
                    ..DistFlags::default()
                },
                "--submit",
            ),
        ] {
            let err = validate_dist_flags(&flags).expect_err("orphan knob");
            assert!(err.contains(owner), "{err}");
        }
        // And a --connect worker rejects all of them.
        let worker = DistFlags {
            connect: Some("127.0.0.1:7700".into()),
            drain: true,
            ..DistFlags::default()
        };
        let err = validate_dist_flags(&worker).expect_err("worker rejects client knobs");
        assert!(err.contains("--connect worker"), "{err}");
    }

    #[test]
    fn daemon_value_parsers_validate_ranges() {
        assert_eq!(parse_max_queue("8"), Ok(8));
        assert!(parse_max_queue("0").is_err());
        assert!(parse_max_queue("full").is_err());
        assert_eq!(parse_lease_secs("300"), Ok(300));
        assert!(parse_lease_secs("0").is_err());
        assert_eq!(parse_retry_max("0"), Ok(0), "0 = single attempt is legal");
        assert_eq!(parse_retry_max("8"), Ok(8));
        assert!(parse_retry_max("-1").is_err());
        assert_eq!(parse_retry_base_ms("100"), Ok(100));
        assert!(parse_retry_base_ms("0").is_err());
        assert!(parse_journal("fleet.journal").is_ok());
        assert!(parse_journal("").is_err());
        let err = parse_journal("/no/such/dir/anywhere/fleet.journal").expect_err("missing dir");
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn worker_mode_excludes_coordinator_and_export_flags() {
        let base = DistFlags {
            connect: Some("127.0.0.1:7700".into()),
            ..DistFlags::default()
        };
        assert_eq!(validate_dist_flags(&base), Ok(()));
        let conflicts = [
            DistFlags {
                dist: true,
                ..base.clone()
            },
            DistFlags {
                listen: Some("127.0.0.1:0".into()),
                ..base.clone()
            },
            DistFlags {
                checkpoint: Some(PathBuf::from("ckpt.bin")),
                ..base.clone()
            },
            DistFlags {
                batch: Some(2),
                ..base.clone()
            },
            DistFlags {
                export_flags: vec!["--json".into()],
                ..base.clone()
            },
        ];
        for flags in conflicts {
            assert!(validate_dist_flags(&flags).is_err(), "{flags:?}");
        }
    }
}
