//! The daemon client: submit a plan over TCP, ride out a flaky link and
//! daemon restarts, and come back with the exact bytes a single-process
//! sweep would have produced.
//!
//! The client is built around one deliberately boring primitive:
//! **request-per-connection**. Every operation — submit, status poll,
//! fetch, drain — opens a fresh connection, handshakes, sends one frame,
//! reads one reply, and closes. There is no session state to resume, so
//! a retry after *any* failure (connect refused while the daemon
//! restarts, a chaos-dropped frame, a read timeout) is always safe; the
//! daemon's fingerprint dedup makes even a re-sent `Submit` idempotent.
//!
//! Retries back off exponentially with deterministic jitter: the delay
//! stream is a pure function of [`ClientConfig::seed`] and the attempt
//! number, so chaos tests replay bit-for-bit. Chaos itself
//! ([`ClientConfig::chaos`]) rides the same [`crate::faultnet`] machinery
//! as the worker link, with the seed re-derived per attempt so each retry
//! sees a fresh (but reproducible) fault pattern instead of deadlocking
//! on the same drop forever.

use crate::faultnet::{self, ChaosSpec, FaultTransport};
use crate::wire::{self, Frame, PlanState, PROTOCOL_VERSION};
use std::fmt;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use zhuyi_fleet::{ExecOptions, JobResult, ResultStore, SweepPlan};

/// Configuration of one client (all operations share it).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Client name sent in the handshake; the daemon keys its fairness
    /// lanes on it, so two cooperating processes sharing a name share a
    /// lane.
    pub name: String,
    /// Retry budget per operation: an operation is attempted at most
    /// `retry_max + 1` times before [`ClientError::Exhausted`].
    pub retry_max: u32,
    /// First backoff delay; doubles per retry (capped at 5 s) plus
    /// deterministic jitter derived from [`ClientConfig::seed`].
    pub retry_base: Duration,
    /// Seed for backoff jitter (and nothing else — chaos carries its
    /// own seed in [`ClientConfig::chaos`]).
    pub seed: u64,
    /// How long to wait for a reply before declaring the attempt lost.
    /// This is the drop-recovery clock: a chaos-eaten `Submit` costs one
    /// read timeout, then the retry path takes over.
    pub read_timeout: Duration,
    /// Delay between status polls while waiting for a plan.
    pub poll_interval: Duration,
    /// Total patience for one plan to complete before
    /// [`ClientError::Timeout`].
    pub poll_timeout: Duration,
    /// Fault injection on the submit link (tests); the spec's seed is
    /// re-derived per attempt via [`faultnet::derive_worker_seed`].
    pub chaos: Option<ChaosSpec>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            name: "client".to_string(),
            retry_max: 8,
            retry_base: Duration::from_millis(100),
            seed: 0,
            read_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(200),
            poll_timeout: Duration::from_secs(600),
            chaos: None,
        }
    }
}

/// How a client operation can fail *after* the retry budget is spent
/// (transient faults never surface directly).
#[derive(Debug)]
pub enum ClientError {
    /// The daemon refused the handshake (version mismatch).
    Rejected(String),
    /// Every attempt failed; `last` is the final attempt's failure.
    Exhausted {
        /// Attempts made (`retry_max + 1`).
        attempts: u32,
        /// The last transport-level failure or `Busy` answer.
        last: String,
    },
    /// The plan did not complete within [`ClientConfig::poll_timeout`].
    Timeout {
        /// How long the client waited.
        waited: Duration,
    },
    /// The daemon answered something the protocol does not allow here,
    /// or the plan reached a state the caller cannot recover from
    /// (cancelled, forgotten).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Rejected(reason) => write!(f, "daemon rejected session: {reason}"),
            ClientError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "gave up after {attempts} attempt(s); last failure: {last}"
                )
            }
            ClientError::Timeout { waited } => {
                write!(f, "plan not complete after {waited:?}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// What a submission came back with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The plan fingerprint (also the handle for status/fetch).
    pub fingerprint: u64,
    /// `true` when the daemon already knew the fingerprint — a retried
    /// or duplicate submission that enqueued nothing.
    pub deduped: bool,
    /// Plans queued ahead at admission time.
    pub position: u32,
}

/// A status poll's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStatus {
    /// Where the plan stands.
    pub state: PlanState,
    /// Results journaled so far.
    pub completed: u64,
    /// Total jobs in the plan.
    pub total: u64,
}

enum AttemptError {
    /// Transient: retry with backoff.
    Retry(String),
    /// Hopeless: surface immediately.
    Fatal(ClientError),
}

/// Backoff before retry `attempt` (0-based): `base * 2^attempt` plus
/// seeded jitter in `[0, base)`, capped at 5 s. Pure function of the
/// config — chaos runs replay identically.
fn backoff_delay(config: &ClientConfig, attempt: u32) -> Duration {
    let base = config.retry_base.max(Duration::from_millis(1));
    let exp = base.saturating_mul(1u32 << attempt.min(6));
    let base_ms = u64::try_from(base.as_millis()).unwrap_or(u64::MAX).max(1);
    let jitter = faultnet::splitmix64(config.seed ^ u64::from(attempt).wrapping_add(1)) % base_ms;
    (exp + Duration::from_millis(jitter)).min(Duration::from_secs(5))
}

/// One attempt: connect, handshake, send `frame`, read the reply.
fn request(config: &ClientConfig, attempt: u32, frame: &Frame) -> Result<Frame, AttemptError> {
    let retry = |what: String| AttemptError::Retry(what);
    let mut stream = TcpStream::connect(&config.addr)
        .map_err(|e| retry(format!("connect {}: {e}", config.addr)))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(config.read_timeout))
        .map_err(|e| retry(format!("set_read_timeout: {e}")))?;
    // The handshake is always clean — chaos models the request link, and
    // a handshake that cannot complete is indistinguishable from a dead
    // daemon anyway (the retry path covers both).
    wire::write_frame(
        &mut stream,
        &Frame::ClientHello {
            version: PROTOCOL_VERSION,
            client: config.name.clone(),
        },
    )
    .map_err(|e| retry(format!("handshake send: {e}")))?;
    match wire::read_frame(&mut stream) {
        Ok(Frame::ClientWelcome { .. }) => {}
        Ok(Frame::Reject { reason }) => {
            return Err(AttemptError::Fatal(ClientError::Rejected(reason)));
        }
        Ok(other) => {
            return Err(retry(format!(
                "unexpected handshake reply: {:?}",
                wire::frame_kind(&other)
            )));
        }
        Err(e) => return Err(retry(format!("handshake read: {e}"))),
    }
    let writer = stream
        .try_clone()
        .map_err(|e| retry(format!("clone stream: {e}")))?;
    let mut transport = match &config.chaos {
        Some(spec) => FaultTransport::chaotic(
            writer,
            ChaosSpec {
                seed: faultnet::derive_worker_seed(spec.seed, u64::from(attempt)),
                profile: spec.profile,
            },
        ),
        None => FaultTransport::plain(writer),
    };
    transport
        .send(frame)
        .map_err(|e| retry(format!("request send: {e}")))?;
    match wire::read_frame(&mut stream) {
        Ok(reply) => Ok(reply),
        Err(e) => Err(retry(format!("reply read: {e}"))),
    }
}

/// Runs one operation through the retry loop. `Busy` answers count as
/// transient (the queue may drain); everything else is returned to the
/// caller to interpret.
fn rpc(config: &ClientConfig, frame: &Frame) -> Result<Frame, ClientError> {
    let mut last = String::from("no attempt made");
    for attempt in 0..=config.retry_max {
        if attempt > 0 {
            std::thread::sleep(backoff_delay(config, attempt - 1));
        }
        match request(config, attempt, frame) {
            Ok(Frame::Busy { queue_limit }) => {
                last = format!("daemon busy (queue limit {queue_limit})");
            }
            Ok(reply) => return Ok(reply),
            Err(AttemptError::Fatal(e)) => return Err(e),
            Err(AttemptError::Retry(what)) => last = what,
        }
    }
    Err(ClientError::Exhausted {
        attempts: config.retry_max + 1,
        last,
    })
}

/// Submits `plan` (idempotently — the fingerprint is derived from the
/// plan and options, so resubmitting the same sweep dedups server-side).
///
/// # Errors
///
/// [`ClientError::Exhausted`] once the retry budget is spent (including
/// persistent `Busy`), [`ClientError::Rejected`] on version mismatch.
pub fn submit_plan(
    config: &ClientConfig,
    plan: &SweepPlan,
    options: ExecOptions,
) -> Result<SubmitOutcome, ClientError> {
    let fingerprint = crate::checkpoint::plan_fingerprint(plan, options);
    match rpc(
        config,
        &Frame::Submit {
            fingerprint,
            options,
            jobs: plan.jobs().to_vec(),
        },
    )? {
        Frame::Accepted {
            fingerprint,
            deduped,
            position,
        } => Ok(SubmitOutcome {
            fingerprint,
            deduped,
            position,
        }),
        other => Err(ClientError::Protocol(format!(
            "submit answered with {:?}",
            wire::frame_kind(&other)
        ))),
    }
}

/// Polls one plan's status.
///
/// # Errors
///
/// [`ClientError::Exhausted`] when the daemon stays unreachable.
pub fn plan_status(config: &ClientConfig, fingerprint: u64) -> Result<PlanStatus, ClientError> {
    match rpc(config, &Frame::Status { fingerprint })? {
        Frame::StatusReport {
            state,
            completed,
            total,
            ..
        } => Ok(PlanStatus {
            state,
            completed,
            total,
        }),
        other => Err(ClientError::Protocol(format!(
            "status answered with {:?}",
            wire::frame_kind(&other)
        ))),
    }
}

/// Blocks until `fingerprint` completes, polling on
/// [`ClientConfig::poll_interval`].
///
/// # Errors
///
/// [`ClientError::Timeout`] past [`ClientConfig::poll_timeout`];
/// [`ClientError::Protocol`] if the plan is cancelled or forgotten
/// (lease expiry) while waiting.
pub fn wait_for_plan(config: &ClientConfig, fingerprint: u64) -> Result<(), ClientError> {
    let started = Instant::now();
    loop {
        let status = plan_status(config, fingerprint)?;
        match status.state {
            PlanState::Completed => return Ok(()),
            PlanState::Cancelled => {
                return Err(ClientError::Protocol(format!(
                    "plan {fingerprint:#018x} was cancelled"
                )));
            }
            PlanState::Unknown => {
                return Err(ClientError::Protocol(format!(
                    "daemon does not know plan {fingerprint:#018x} (lease expired?)"
                )));
            }
            PlanState::Queued | PlanState::Running => {}
        }
        if started.elapsed() >= config.poll_timeout {
            return Err(ClientError::Timeout {
                waited: started.elapsed(),
            });
        }
        std::thread::sleep(config.poll_interval);
    }
}

/// Fetches a completed plan's results.
///
/// # Errors
///
/// [`ClientError::Protocol`] when the plan is not complete (the daemon
/// answers a status report instead of results — fetch never hands back
/// a partial sweep).
pub fn fetch_results(
    config: &ClientConfig,
    fingerprint: u64,
) -> Result<Vec<JobResult>, ClientError> {
    match rpc(config, &Frame::FetchResults { fingerprint })? {
        Frame::Results { results, .. } => Ok(results),
        Frame::StatusReport { state, .. } => Err(ClientError::Protocol(format!(
            "plan {fingerprint:#018x} not fetchable: {}",
            state.name()
        ))),
        other => Err(ClientError::Protocol(format!(
            "fetch answered with {:?}",
            wire::frame_kind(&other)
        ))),
    }
}

/// The whole client arc: submit, wait, fetch, merge. The returned store
/// is id-deduplicated and ascending by job id — byte-identical to what
/// [`zhuyi_fleet::run_sweep_with`] produces for the same plan and
/// options, no matter how many retries, restarts, or queue waits
/// happened in between.
///
/// # Errors
///
/// Any of [`submit_plan`], [`wait_for_plan`], [`fetch_results`].
pub fn run_via_daemon(
    config: &ClientConfig,
    plan: &SweepPlan,
    options: ExecOptions,
) -> Result<ResultStore, ClientError> {
    let outcome = submit_plan(config, plan, options)?;
    if outcome.deduped {
        eprintln!(
            "fleet client: plan {:#018x} already known to the daemon (deduped)",
            outcome.fingerprint,
        );
    } else {
        eprintln!(
            "fleet client: plan {:#018x} admitted at queue position {}",
            outcome.fingerprint, outcome.position,
        );
    }
    wait_for_plan(config, outcome.fingerprint)?;
    let results = fetch_results(config, outcome.fingerprint)?;
    Ok(ResultStore::new(results))
}

/// Asks the daemon to drain: finish every admitted plan, refuse new
/// ones, then exit. Returns the number of plans the drain will finish.
///
/// # Errors
///
/// [`ClientError::Exhausted`] when the daemon stays unreachable.
pub fn drain(config: &ClientConfig) -> Result<u32, ClientError> {
    match rpc(config, &Frame::Drain)? {
        Frame::DrainAck { queued } => Ok(queued),
        other => Err(ClientError::Protocol(format!(
            "drain answered with {:?}",
            wire::frame_kind(&other)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let config = ClientConfig {
            retry_base: Duration::from_millis(100),
            seed: 42,
            ..ClientConfig::default()
        };
        let d0 = backoff_delay(&config, 0);
        let d3 = backoff_delay(&config, 3);
        assert!(d0 >= Duration::from_millis(100) && d0 < Duration::from_millis(200));
        assert!(d3 >= Duration::from_millis(800) && d3 < Duration::from_millis(900));
        // Deep attempts pin to the cap rather than overflowing.
        assert_eq!(backoff_delay(&config, 30), Duration::from_secs(5));
    }

    #[test]
    fn backoff_jitter_is_deterministic_in_the_seed() {
        let mk = |seed| ClientConfig {
            seed,
            ..ClientConfig::default()
        };
        assert_eq!(backoff_delay(&mk(7), 2), backoff_delay(&mk(7), 2));
        // Different seeds decorrelate (not a hard guarantee for every
        // pair, but these two differ — pinned so a jitter regression to
        // "constant zero" cannot sneak in).
        assert_ne!(backoff_delay(&mk(1), 2), backoff_delay(&mk(2), 2));
    }

    #[test]
    fn rpc_exhausts_against_a_dead_address() {
        // Nothing listens on this port (reserved doc range is not
        // routable); the retry loop must give up cleanly, not hang.
        let config = ClientConfig {
            addr: "127.0.0.1:1".to_string(),
            retry_max: 1,
            retry_base: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        match rpc(&config, &Frame::Drain) {
            Err(ClientError::Exhausted { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }
}
