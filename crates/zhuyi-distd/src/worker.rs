//! The worker half of the protocol: connect, handshake, execute assigned
//! shards job-by-job through the fleet engine's metrics-only execution
//! path, and stream each result back the moment it finishes.
//!
//! A worker is deliberately single-threaded about simulation — process
//! count is the parallelism axis — but runs two side threads: a reader
//! pumping coordinator frames ([`crate::wire::Frame::Assign`] /
//! [`crate::wire::Frame::Revoke`] / [`crate::wire::Frame::Shutdown`])
//! into an inbox, and a heartbeat ticker, so a multi-second simulation
//! never reads as a crash and a revoke can overtake the jobs queued
//! behind the one currently simulating.

use crate::wire::{self, Frame, PROTOCOL_VERSION};
use std::collections::{HashSet, VecDeque};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use zhuyi_fleet::{exec, ExecOptions, JobResult, SweepJob};

/// Exit code of a worker whose `--fail-after` fault injection fired.
pub const FAULT_EXIT_CODE: u8 = 17;

/// How a worker run can fail.
#[derive(Debug)]
pub enum WorkerError {
    /// Could not reach the coordinator.
    Connect(String),
    /// Handshake failed (version mismatch, rejected, bad frame).
    Handshake(String),
    /// The coordinator vanished mid-sweep.
    ConnectionLost(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Connect(what) => write!(f, "cannot connect to coordinator: {what}"),
            WorkerError::Handshake(what) => write!(f, "handshake failed: {what}"),
            WorkerError::ConnectionLost(what) => write!(f, "coordinator connection lost: {what}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Options of one worker session.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Name sent in the handshake (shows up in coordinator diagnostics).
    pub name: String,
    /// Whether the coordinator spawned this process itself (spawned
    /// workers are eligible for respawning after a crash).
    pub spawned: bool,
    /// Fault injection: `process::exit(17)` after this many results were
    /// streamed — the hook the crash-recovery tests use.
    pub fail_after: Option<u32>,
    /// Heartbeat period (default 1s).
    pub heartbeat_interval: Duration,
}

impl WorkerOptions {
    /// Defaults for connecting to `addr`.
    pub fn new(connect: impl Into<String>) -> Self {
        Self {
            connect: connect.into(),
            name: format!("worker-{}", std::process::id()),
            spawned: false,
            fail_after: None,
            heartbeat_interval: Duration::from_secs(1),
        }
    }
}

#[derive(Default)]
struct Inbox {
    batches: VecDeque<(u32, Vec<SweepJob>)>,
    revoked: HashSet<u64>,
    shutdown: bool,
    dead: Option<String>,
}

/// Runs one worker session to completion: returns `Ok(jobs_executed)`
/// after a clean [`Frame::Shutdown`].
///
/// # Errors
///
/// See [`WorkerError`]. Never panics on protocol garbage — malformed
/// frames surface as [`WorkerError::ConnectionLost`].
pub fn run_worker(options: &WorkerOptions) -> Result<u64, WorkerError> {
    // A spawned worker can race the coordinator's accept loop by a few
    // milliseconds; an external one may be started just before the
    // coordinator. A short retry window forgives both.
    let mut stream = None;
    for attempt in 0..25 {
        match TcpStream::connect(&options.connect) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) if attempt == 24 => return Err(WorkerError::Connect(e.to_string())),
            Err(_) => std::thread::sleep(Duration::from_millis(200)),
        }
    }
    let mut stream = stream.expect("loop either sets the stream or returns");
    let _ = stream.set_nodelay(true);

    // Handshake.
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            spawned: options.spawned,
            name: options.name.clone(),
        },
    )
    .map_err(|e| WorkerError::Handshake(e.to_string()))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let exec_options = match wire::read_frame(&mut stream) {
        Ok(Frame::Welcome {
            record_traces,
            batch_lanes,
            ..
        }) => ExecOptions {
            record_traces,
            batch_lanes: batch_lanes as usize,
        },
        Ok(Frame::Reject { reason }) => return Err(WorkerError::Handshake(reason)),
        Ok(other) => {
            return Err(WorkerError::Handshake(format!(
                "expected Welcome, got {other:?}"
            )))
        }
        Err(e) => return Err(WorkerError::Handshake(e.to_string())),
    };
    let _ = stream.set_read_timeout(None);

    let writer = Arc::new(Mutex::new(
        stream
            .try_clone()
            .map_err(|e| WorkerError::Connect(e.to_string()))?,
    ));
    let inbox = Arc::new((Mutex::new(Inbox::default()), Condvar::new()));

    // Reader: coordinator frames → inbox.
    {
        let inbox = Arc::clone(&inbox);
        let mut reader = stream;
        std::thread::spawn(move || loop {
            let frame = wire::read_frame(&mut reader);
            let (lock, signal) = &*inbox;
            let mut inbox = lock.lock().expect("inbox poisoned");
            match frame {
                Ok(Frame::Assign { batch, jobs }) => {
                    // A fresh assignment supersedes any earlier Revoke of
                    // the same job (the thief died and the coordinator
                    // handed the job back): the coordinator writes frames
                    // to this worker in decision order, so whatever
                    // arrives last wins. Without this, a once-revoked id
                    // would be skipped forever and the sweep would stall.
                    for job in &jobs {
                        inbox.revoked.remove(&job.id.0);
                    }
                    inbox.batches.push_back((batch, jobs));
                }
                Ok(Frame::Revoke { jobs }) => inbox.revoked.extend(jobs),
                Ok(Frame::Shutdown) => inbox.shutdown = true,
                Ok(_) => {} // coordinator sends nothing else post-handshake
                Err(e) => {
                    inbox.dead = Some(e.to_string());
                    signal.notify_all();
                    return;
                }
            }
            signal.notify_all();
        });
    }

    // Heartbeat: liveness while a job simulates for seconds.
    {
        let writer = Arc::clone(&writer);
        let interval = options.heartbeat_interval;
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            let mut w = writer.lock().expect("writer poisoned");
            if wire::write_frame(&mut *w, &Frame::Heartbeat).is_err() {
                return;
            }
        });
    }

    let mut executed: u64 = 0;
    let mut streamed_results: u32 = 0;
    loop {
        let batch = {
            let (lock, signal) = &*inbox;
            let mut guard = lock.lock().expect("inbox poisoned");
            loop {
                if let Some(batch) = guard.batches.pop_front() {
                    break batch;
                }
                // Shutdown outranks a dead socket: the coordinator closes
                // the connection right after the Shutdown frame, so both
                // flags are routinely set together on a clean exit.
                if guard.shutdown {
                    return Ok(executed);
                }
                if let Some(dead) = &guard.dead {
                    return Err(WorkerError::ConnectionLost(dead.clone()));
                }
                guard = signal.wait(guard).expect("inbox poisoned");
            }
        };
        let (batch_id, jobs) = batch;
        for job in jobs {
            let revoked = {
                let (lock, _) = &*inbox;
                lock.lock()
                    .expect("inbox poisoned")
                    .revoked
                    .contains(&job.id.0)
            };
            if revoked {
                continue;
            }
            let outcome = exec::execute_with(&job.spec, exec_options);
            let result = JobResult { job, outcome };
            {
                let mut w = writer.lock().expect("writer poisoned");
                if let Err(e) = wire::write_frame(
                    &mut *w,
                    &Frame::Result {
                        result: Box::new(result),
                    },
                ) {
                    return Err(WorkerError::ConnectionLost(e.to_string()));
                }
            }
            executed += 1;
            streamed_results += 1;
            if options.fail_after == Some(streamed_results) {
                // Fault injection: die *hard*, mid-batch, exactly like a
                // crashed or OOM-killed process would.
                std::process::exit(i32::from(FAULT_EXIT_CODE));
            }
        }
        let mut w = writer.lock().expect("writer poisoned");
        if let Err(e) = wire::write_frame(&mut *w, &Frame::BatchDone { batch: batch_id }) {
            return Err(WorkerError::ConnectionLost(e.to_string()));
        }
    }
}
