//! The worker half of the protocol: connect, handshake, execute assigned
//! shards job-by-job through the fleet engine's metrics-only execution
//! path, and stream each result back the moment it finishes.
//!
//! A worker is deliberately single-threaded about simulation — process
//! count is the parallelism axis — but runs two side threads: a reader
//! pumping coordinator frames ([`crate::wire::Frame::Assign`] /
//! [`crate::wire::Frame::Revoke`] / [`crate::wire::Frame::Shutdown`])
//! into an inbox, and a heartbeat ticker, so a multi-second simulation
//! never reads as a crash and a revoke can overtake the jobs queued
//! behind the one currently simulating.
//!
//! # Panic containment
//!
//! Engine panics are *contained*: `execute_with` runs under
//! [`std::panic::catch_unwind`], a panicking job becomes a
//! [`Frame::JobFailed`] with the panic message, and the worker moves on
//! to the next job — one pathological job costs one strike at the
//! coordinator, not a dead process and its whole queue. A custom panic
//! hook keeps the contained backtrace off stderr while delegating
//! anything *outside* job execution to the default hook.
//!
//! # Fault hooks
//!
//! All outbound frames go through a [`FaultTransport`], so a worker
//! given `--chaos-seed`/`--chaos-profile` injects a deterministic fault
//! stream into its own uplink. The remaining options (`fail_after`,
//! `poison_job`, `wedge_job`, `corrupt_job`, `slow_start`) are test
//! fault hooks; see [`WorkerOptions`].

use crate::faultnet::{ChaosSpec, FaultTransport};
use crate::wire::{self, Frame, JobError, JobErrorKind, PROTOCOL_VERSION};
use std::cell::{Cell, RefCell};
use std::collections::{HashSet, VecDeque};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::{Duration, Instant};
use zhuyi_fleet::{exec, ExecOptions, JobKind, JobOutcome, JobResult, SweepJob};
use zhuyi_telemetry::{Counter, Registry};

/// Exit code of a worker whose `--fail-after` fault injection fired.
pub const FAULT_EXIT_CODE: u8 = 17;

/// How a worker run can fail.
#[derive(Debug)]
pub enum WorkerError {
    /// Could not reach the coordinator.
    Connect(String),
    /// Handshake failed (version mismatch, rejected, bad frame).
    Handshake(String),
    /// The coordinator vanished mid-sweep.
    ConnectionLost(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Connect(what) => write!(f, "cannot connect to coordinator: {what}"),
            WorkerError::Handshake(what) => write!(f, "handshake failed: {what}"),
            WorkerError::ConnectionLost(what) => write!(f, "coordinator connection lost: {what}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Options of one worker session.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Name sent in the handshake (shows up in coordinator diagnostics).
    pub name: String,
    /// Whether the coordinator spawned this process itself (spawned
    /// workers are eligible for respawning after a crash).
    pub spawned: bool,
    /// Fault injection: `process::exit(17)` after this many results were
    /// streamed — the hook the crash-recovery tests use.
    pub fail_after: Option<u32>,
    /// Deterministic fault injection on every outbound frame (the
    /// `--chaos-seed`/`--chaos-profile` flags).
    pub chaos: Option<ChaosSpec>,
    /// Test fault hook: executing this job id panics (inside the
    /// containment boundary, so it surfaces as [`Frame::JobFailed`]).
    pub poison_job: Option<u64>,
    /// Test fault hook: executing this job id never returns (exercises
    /// the coordinator's per-job deadline).
    pub wedge_job: Option<u64>,
    /// Test fault hook `(job, delta)`: results for this job id are
    /// perturbed by `delta * n` on the n-th corruption this process
    /// performs — so any two executions (same worker or not, given
    /// distinct deltas) disagree, which duplicate-execution
    /// cross-checking must catch.
    pub corrupt_job: Option<(u64, u64)>,
    /// Test hook: sleep this long before connecting, pinning the order
    /// of worker startup against coordinator-side events in tests.
    pub slow_start: Option<Duration>,
    /// Heartbeat period (default 1s).
    pub heartbeat_interval: Duration,
}

impl WorkerOptions {
    /// Defaults for connecting to `addr`.
    pub fn new(connect: impl Into<String>) -> Self {
        Self {
            connect: connect.into(),
            name: format!("worker-{}", std::process::id()),
            spawned: false,
            fail_after: None,
            chaos: None,
            poison_job: None,
            wedge_job: None,
            corrupt_job: None,
            slow_start: None,
            heartbeat_interval: Duration::from_secs(1),
        }
    }
}

thread_local! {
    /// True while this thread is inside the job-execution containment
    /// boundary (panics are captured, not printed).
    static CONTAINING: Cell<bool> = const { Cell::new(false) };
    /// The captured message of the last contained panic on this thread.
    static PANIC_MESSAGE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Installs the process-wide containment-aware panic hook exactly once:
/// contained panics are captured silently for the [`Frame::JobFailed`]
/// detail; everything else goes to the previously installed hook.
fn install_containment_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if CONTAINING.with(Cell::get) {
                PANIC_MESSAGE.with(|m| *m.borrow_mut() = Some(info.to_string()));
            } else {
                previous(info);
            }
        }));
    });
}

/// Executes one job inside the containment boundary, applying the
/// poison/wedge test hooks; a panic comes back as its message.
fn execute_contained(
    job: &SweepJob,
    exec_options: ExecOptions,
    options: &WorkerOptions,
) -> Result<JobOutcome, String> {
    CONTAINING.with(|c| c.set(true));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if options.poison_job == Some(job.id.0) {
            panic!("injected test fault: poisoned job {}", job.id.0);
        }
        if options.wedge_job == Some(job.id.0) {
            // Never returns: the coordinator's per-job deadline is the
            // only way out.
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        exec::execute_with(&job.spec, exec_options)
    }));
    CONTAINING.with(|c| c.set(false));
    outcome.map_err(|payload| {
        PANIC_MESSAGE
            .with(|m| m.borrow_mut().take())
            .unwrap_or_else(|| {
                payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string())
            })
    })
}

/// Applies the `corrupt_job` test perturbation: a visible, kind-specific
/// nudge that a duplicate execution (with a different strike value)
/// cannot reproduce.
fn corrupt_outcome(outcome: &mut JobOutcome, amount: u64) {
    match outcome {
        JobOutcome::Probe(p) => {
            p.duration = av_core::units::Seconds(p.duration.value() + amount as f64);
        }
        JobOutcome::MinSafeFpr(m) => m.sims_run += amount as u32,
        JobOutcome::Analysis(a) => a.steps += amount as usize,
    }
}

#[derive(Default)]
struct Inbox {
    batches: VecDeque<(u32, ExecOptions, Vec<SweepJob>)>,
    revoked: HashSet<u64>,
    shutdown: bool,
    dead: Option<String>,
}

/// Runs one worker session to completion: returns `Ok(jobs_executed)`
/// after a clean [`Frame::Shutdown`].
///
/// # Errors
///
/// See [`WorkerError`]. Never panics on protocol garbage — malformed
/// frames surface as [`WorkerError::ConnectionLost`].
pub fn run_worker(options: &WorkerOptions) -> Result<u64, WorkerError> {
    install_containment_hook();
    if let Some(delay) = options.slow_start {
        std::thread::sleep(delay);
    }
    // A spawned worker can race the coordinator's accept loop by a few
    // milliseconds; an external one may be started just before the
    // coordinator. A short retry window forgives both.
    let mut stream = None;
    for attempt in 0..25 {
        match TcpStream::connect(&options.connect) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) if attempt == 24 => return Err(WorkerError::Connect(e.to_string())),
            Err(_) => std::thread::sleep(Duration::from_millis(200)),
        }
    }
    let mut stream = stream.expect("loop either sets the stream or returns");
    let _ = stream.set_nodelay(true);

    // Handshake.
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            spawned: options.spawned,
            name: options.name.clone(),
        },
    )
    .map_err(|e| WorkerError::Handshake(e.to_string()))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    // v7: the Welcome no longer carries `ExecOptions` — those arrive with
    // every Assign, so one warm session can serve plans with different
    // execution shapes back to back (the daemon keeps workers connected
    // across plans).
    let telemetry_on = match wire::read_frame(&mut stream) {
        Ok(Frame::Welcome { telemetry, .. }) => telemetry,
        Ok(Frame::Reject { reason }) => return Err(WorkerError::Handshake(reason)),
        Ok(other) => {
            return Err(WorkerError::Handshake(format!(
                "expected Welcome, got {other:?}"
            )))
        }
        Err(e) => return Err(WorkerError::Handshake(e.to_string())),
    };
    let _ = stream.set_read_timeout(None);

    // Telemetry: one registry for the whole session, installed on this
    // (the executing) thread and handed as explicit `Arc`s to the side
    // threads — thread-local bindings do not cross `std::thread::spawn`.
    let registry = telemetry_on.then(|| Arc::new(Registry::new()));
    let _telemetry_guard = registry.as_ref().map(zhuyi_telemetry::install);
    // The send instant of the most recent un-echoed heartbeat, stamped by
    // the heartbeat thread and consumed by the reader when the
    // coordinator's echo arrives: one round-trip sample per echo.
    let last_beat: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));

    let write_half = stream
        .try_clone()
        .map_err(|e| WorkerError::Connect(e.to_string()))?;
    // The handshake above went out clean; chaos (if any) starts at the
    // first post-handshake frame, so a session always establishes.
    let mut transport = match options.chaos {
        Some(spec) => FaultTransport::chaotic(write_half, spec),
        None => FaultTransport::plain(write_half),
    };
    if let Some(reg) = &registry {
        transport.set_telemetry(Arc::clone(reg));
    }
    let writer = Arc::new(Mutex::new(transport));
    let inbox = Arc::new((Mutex::new(Inbox::default()), Condvar::new()));

    // Reader: coordinator frames → inbox.
    {
        let inbox = Arc::clone(&inbox);
        let registry = registry.clone();
        let last_beat = Arc::clone(&last_beat);
        let mut reader = stream;
        std::thread::spawn(move || loop {
            let frame = wire::read_frame_recorded(&mut reader, registry.as_deref());
            let (lock, signal) = &*inbox;
            let mut inbox = lock.lock().expect("inbox poisoned");
            match frame {
                Ok(Frame::Assign {
                    batch,
                    options,
                    jobs,
                }) => {
                    // A fresh assignment supersedes any earlier Revoke of
                    // the same job (the thief died and the coordinator
                    // handed the job back): the coordinator writes frames
                    // to this worker in decision order, so whatever
                    // arrives last wins. Without this, a once-revoked id
                    // would be skipped forever and the sweep would stall.
                    for job in &jobs {
                        inbox.revoked.remove(&job.id.0);
                    }
                    inbox.batches.push_back((batch, options, jobs));
                }
                Ok(Frame::Revoke { jobs }) => inbox.revoked.extend(jobs),
                Ok(Frame::Shutdown) => inbox.shutdown = true,
                Ok(Frame::Heartbeat) => {
                    // v6: the coordinator echoes heartbeats; the elapsed
                    // time since ours went out is one round-trip sample.
                    if let Some(reg) = &registry {
                        reg.inc(Counter::HeartbeatEchoes);
                        if let Some(sent) = last_beat.lock().expect("beat clock poisoned").take() {
                            reg.record_rtt_us(sent.elapsed().as_micros() as u64);
                        }
                    }
                }
                Ok(_) => {} // coordinator sends nothing else post-handshake
                Err(e) => {
                    inbox.dead = Some(e.to_string());
                    signal.notify_all();
                    return;
                }
            }
            signal.notify_all();
        });
    }

    // Heartbeat: liveness while a job simulates for seconds.
    {
        let writer = Arc::clone(&writer);
        let registry = registry.clone();
        let last_beat = Arc::clone(&last_beat);
        let interval = options.heartbeat_interval;
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            let mut w = writer.lock().expect("writer poisoned");
            if let Some(reg) = &registry {
                reg.inc(Counter::HeartbeatsSent);
                let mut beat = last_beat.lock().expect("beat clock poisoned");
                // Stamp only when the previous echo was consumed, so a
                // sample always pairs one send with its own echo.
                if beat.is_none() {
                    *beat = Some(Instant::now());
                }
            }
            if w.send(&Frame::Heartbeat).is_err() {
                return;
            }
        });
    }

    let mut executed: u64 = 0;
    let mut streamed_results: u32 = 0;
    let mut corruptions: u64 = 0;
    loop {
        let batch = {
            let (lock, signal) = &*inbox;
            let mut guard = lock.lock().expect("inbox poisoned");
            loop {
                if let Some(batch) = guard.batches.pop_front() {
                    break batch;
                }
                // Shutdown outranks a dead socket: the coordinator closes
                // the connection right after the Shutdown frame, so both
                // flags are routinely set together on a clean exit.
                if guard.shutdown {
                    return Ok(executed);
                }
                if let Some(dead) = &guard.dead {
                    return Err(WorkerError::ConnectionLost(dead.clone()));
                }
                guard = signal.wait(guard).expect("inbox poisoned");
            }
        };
        let (batch_id, exec_options, jobs) = batch;
        for block in seed_blocks(jobs, exec_options, options) {
            // Revocation is checked once per block (best-effort, exactly
            // like the old per-job check: a Revoke that lands mid-block
            // arrives too late either way).
            let live: Vec<SweepJob> = block
                .into_iter()
                .filter(|job| {
                    let (lock, _) = &*inbox;
                    !lock
                        .lock()
                        .expect("inbox poisoned")
                        .revoked
                        .contains(&job.id.0)
                })
                .collect();
            let results = execute_block_contained(live, exec_options, options);
            for (job, result) in results {
                let job_id = job.id.0;
                match result {
                    Ok(mut outcome) => {
                        if let Some((target, delta)) = options.corrupt_job {
                            if target == job_id {
                                corruptions += 1;
                                corrupt_outcome(&mut outcome, delta * corruptions);
                            }
                        }
                        let result = JobResult { job, outcome };
                        {
                            let mut w = writer.lock().expect("writer poisoned");
                            // v6: a cumulative snapshot precedes every Result,
                            // so once the coordinator holds a worker's last
                            // Result it also holds metrics covering it (TCP
                            // preserves the order).
                            if let Some(reg) = &registry {
                                if let Err(e) = w.send(&Frame::Metrics {
                                    snapshot: Box::new(reg.snapshot()),
                                }) {
                                    return Err(WorkerError::ConnectionLost(e.to_string()));
                                }
                            }
                            if let Err(e) = w.send(&Frame::Result {
                                result: Box::new(result),
                            }) {
                                return Err(WorkerError::ConnectionLost(e.to_string()));
                            }
                        }
                        executed += 1;
                        streamed_results += 1;
                        if options.fail_after == Some(streamed_results) {
                            // Fault injection: die *hard*, mid-batch, exactly
                            // like a crashed or OOM-killed process would.
                            std::process::exit(i32::from(FAULT_EXIT_CODE));
                        }
                    }
                    Err(detail) => {
                        // Contained panic: report the strike and keep serving
                        // the rest of the batch — the process survives.
                        let mut w = writer.lock().expect("writer poisoned");
                        if let Err(e) = w.send(&Frame::JobFailed {
                            job: job_id,
                            error: JobError {
                                kind: JobErrorKind::Panic,
                                detail,
                            },
                        }) {
                            return Err(WorkerError::ConnectionLost(e.to_string()));
                        }
                    }
                }
            }
        }
        let mut w = writer.lock().expect("writer poisoned");
        if let Some(reg) = &registry {
            if let Err(e) = w.send(&Frame::Metrics {
                snapshot: Box::new(reg.snapshot()),
            }) {
                return Err(WorkerError::ConnectionLost(e.to_string()));
            }
        }
        if let Err(e) = w.send(&Frame::BatchDone { batch: batch_id }) {
            return Err(WorkerError::ConnectionLost(e.to_string()));
        }
    }
}

/// Groups an assignment's jobs into seed blocks under the sweep-wide
/// [`ExecOptions::seed_blocks`] granularity: consecutive minimum-safe-FPR
/// jobs sharing a candidate grid batch together (up to the limit), and
/// everything else — other job kinds, trace-recording or per-rate-search
/// sweeps, and any job targeted by a fault-injection test hook — rides
/// alone so the per-job containment and corruption semantics are
/// untouched.
fn seed_blocks(
    jobs: Vec<SweepJob>,
    exec_options: ExecOptions,
    options: &WorkerOptions,
) -> Vec<Vec<SweepJob>> {
    let limit = exec_options.seed_blocks;
    let blockable = limit > 1 && !exec_options.record_traces && exec_options.batch_lanes != 1;
    if !blockable {
        return jobs.into_iter().map(|job| vec![job]).collect();
    }
    let hooked = |id: u64| {
        options.poison_job == Some(id)
            || options.wedge_job == Some(id)
            || options.corrupt_job.is_some_and(|(target, _)| target == id)
    };
    let mut blocks: Vec<Vec<SweepJob>> = Vec::new();
    for job in jobs {
        let extends = match (&job.spec.kind, blocks.last()) {
            (JobKind::MinSafeFpr { candidates }, Some(block))
                if block.len() < limit && !hooked(job.id.0) && !hooked(block[0].id.0) =>
            {
                matches!(&block[0].spec.kind,
                    JobKind::MinSafeFpr { candidates: prev } if prev == candidates)
            }
            _ => false,
        };
        if extends {
            blocks.last_mut().expect("nonempty by match").push(job);
        } else {
            blocks.push(vec![job]);
        }
    }
    blocks
}

/// Executes one seed block inside the containment boundary. Multi-job
/// blocks run through [`exec::execute_seed_block`]; if that batched run
/// panics, the block falls back to one-job-at-a-time execution so the
/// strike lands on exactly the job that caused it — byte-identical
/// failure reporting to the per-job path.
fn execute_block_contained(
    block: Vec<SweepJob>,
    exec_options: ExecOptions,
    options: &WorkerOptions,
) -> Vec<(SweepJob, Result<JobOutcome, String>)> {
    if block.len() > 1 {
        let specs: Vec<zhuyi_fleet::JobSpec> = block.iter().map(|job| job.spec.clone()).collect();
        CONTAINING.with(|c| c.set(true));
        let timer = zhuyi_telemetry::JobTimer::start();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec::execute_seed_block(&specs, exec_options)
        }));
        CONTAINING.with(|c| c.set(false));
        if let Ok(outcomes) = outcome {
            // Block jobs interleave through one lockstep loop; each gets
            // the amortized even share of the block's wall time.
            timer.finish_block(block.iter().map(|job| job.id.0));
            return block
                .into_iter()
                .zip(outcomes.into_iter().map(Ok))
                .collect();
        }
        PANIC_MESSAGE.with(|m| m.borrow_mut().take());
    }
    block
        .into_iter()
        .map(|job| {
            let timer = zhuyi_telemetry::JobTimer::start();
            let result = execute_contained(&job, exec_options, options);
            if result.is_ok() {
                // A panicked job records no wall time: its strike is
                // accounted by the coordinator, not the job histogram.
                timer.finish(job.id.0);
            }
            (job, result)
        })
        .collect()
}
