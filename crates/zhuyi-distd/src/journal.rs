//! The daemon's durable write-ahead journal: every submitted plan, every
//! completed job result, and every lifecycle transition, flushed
//! per-record so a `kill -9` of the daemon loses at most the record
//! being appended.
//!
//! This extends the checkpoint-v2 format (see [`crate::checkpoint`]) from
//! one plan per file to a multi-plan log: the same per-record framing and
//! the same damage policy — a torn record at the exact tail of the file
//! (the daemon died mid-append) is tolerated and dropped on load, while
//! the same damage anywhere earlier fails the load, because a mid-file
//! hole means the file as a whole is not trustworthy.
//!
//! # File format (v1)
//!
//! ```text
//! magic   b"ZHUYIDJ1"                        (8 bytes)
//! records u32-LE length
//!         u32-LE FNV-1a-32 payload checksum  (see `wire::payload_checksum`)
//!         payload: 1-byte record tag + fields
//! ```
//!
//! Record payloads reuse the wire codec's primitives, so every persisted
//! job and result is byte-identical to its in-flight encoding:
//!
//! ```text
//! 1 Submitted {fingerprint u64, client str, options, jobs}
//! 2 Result    {fingerprint u64, job_result}
//! 3 Completed {fingerprint u64}
//! 4 Cancelled {fingerprint u64}
//! 5 Fetched   {fingerprint u64}
//! ```
//!
//! [`replay`] folds a loaded record stream back into per-plan state:
//! a restarted daemon re-queues every plan without a `Completed` record,
//! seeds the resumed sweep with the plan's journaled results (so finished
//! jobs are never re-simulated), and retains completed-but-unfetched
//! results for their clients. [`JournalWriter::resume`] then compacts the
//! log — fully retired plans (fetched or cancelled) are dropped, live
//! ones are rewritten — via the same temp-file + atomic-rename dance as
//! checkpoint resume, so a crash mid-compaction leaves the old journal
//! intact.

use crate::wire::{self, Reader, WireError};
use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use zhuyi_fleet::{ExecOptions, JobResult, SweepJob};

const MAGIC: &[u8; 8] = b"ZHUYIDJ1";

/// Errors raised while writing or loading a journal.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file failed.
    Io(std::io::Error),
    /// The file is not a journal, or a non-tail record is corrupt.
    Corrupt(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt(what) => write!(f, "corrupt journal: {what}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One durable event in the daemon's plan lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A plan was admitted into the queue.
    Submitted {
        /// The plan's identity ([`crate::checkpoint::plan_fingerprint`]).
        fingerprint: u64,
        /// The submitting client's name (lease bookkeeping).
        client: String,
        /// Plan-wide execution options.
        options: ExecOptions,
        /// The plan's jobs, ascending by id from 0.
        jobs: Vec<SweepJob>,
    },
    /// One job of a running plan finished.
    Result {
        /// The owning plan.
        fingerprint: u64,
        /// The finished job and its outcome (boxed — by far the largest
        /// variant).
        result: Box<JobResult>,
    },
    /// Every job of the plan finished; results are ready to fetch.
    Completed {
        /// The completed plan.
        fingerprint: u64,
    },
    /// The plan was cancelled while queued (or its lease expired).
    Cancelled {
        /// The cancelled plan.
        fingerprint: u64,
    },
    /// The client collected the completed plan's results; the plan can be
    /// dropped at the next compaction.
    Fetched {
        /// The fetched plan.
        fingerprint: u64,
    },
}

impl JournalRecord {
    /// The plan this record belongs to.
    pub fn fingerprint(&self) -> u64 {
        match self {
            JournalRecord::Submitted { fingerprint, .. }
            | JournalRecord::Result { fingerprint, .. }
            | JournalRecord::Completed { fingerprint }
            | JournalRecord::Cancelled { fingerprint }
            | JournalRecord::Fetched { fingerprint } => *fingerprint,
        }
    }
}

fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match record {
        JournalRecord::Submitted {
            fingerprint,
            client,
            options,
            jobs,
        } => {
            out.push(1);
            wire::put_u64(&mut out, *fingerprint);
            wire::put_str(&mut out, client);
            wire::put_exec_options(&mut out, *options);
            wire::put_u32(&mut out, jobs.len() as u32);
            for job in jobs {
                wire::put_job(&mut out, job);
            }
        }
        JournalRecord::Result {
            fingerprint,
            result,
        } => {
            out.push(2);
            wire::put_u64(&mut out, *fingerprint);
            wire::put_job_result(&mut out, result);
        }
        JournalRecord::Completed { fingerprint } => {
            out.push(3);
            wire::put_u64(&mut out, *fingerprint);
        }
        JournalRecord::Cancelled { fingerprint } => {
            out.push(4);
            wire::put_u64(&mut out, *fingerprint);
        }
        JournalRecord::Fetched { fingerprint } => {
            out.push(5);
            wire::put_u64(&mut out, *fingerprint);
        }
    }
    out
}

fn decode_record(payload: &[u8]) -> Result<JournalRecord, WireError> {
    let mut r = Reader::new(payload);
    let record = match r.u8()? {
        1 => {
            let fingerprint = r.u64()?;
            let client = r.string()?;
            let options = wire::exec_options(&mut r)?;
            let n = r.u32()? as usize;
            // Capacity capped against untrusted counts, as everywhere in
            // the wire codec.
            let mut jobs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                jobs.push(wire::job(&mut r)?);
            }
            JournalRecord::Submitted {
                fingerprint,
                client,
                options,
                jobs,
            }
        }
        2 => JournalRecord::Result {
            fingerprint: r.u64()?,
            result: Box::new(wire::job_result(&mut r)?),
        },
        3 => JournalRecord::Completed {
            fingerprint: r.u64()?,
        },
        4 => JournalRecord::Cancelled {
            fingerprint: r.u64()?,
        },
        5 => JournalRecord::Fetched {
            fingerprint: r.u64()?,
        },
        other => return Err(WireError::Malformed(format!("journal record tag {other}"))),
    };
    r.finish()?;
    Ok(record)
}

/// Append-only journal writer; see the module docs for the format.
#[derive(Debug)]
pub struct JournalWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    records: usize,
}

impl JournalWriter {
    /// Creates (or truncates) a journal and writes the header.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(MAGIC)?;
        writer.flush()?;
        Ok(Self {
            writer,
            path: path.to_path_buf(),
            records: 0,
        })
    }

    /// Opens an existing journal for appending after `recovered` records
    /// were loaded from it: the records are rewritten to a sibling temp
    /// file (discarding any torn tail and anything compaction dropped)
    /// which then atomically renames over the original — a crash
    /// mid-rewrite leaves the old journal untouched.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn resume(path: &Path, recovered: &[JournalRecord]) -> Result<Self, JournalError> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".rewrite");
        let tmp = PathBuf::from(tmp);
        let mut writer = Self::create(&tmp)?;
        for record in recovered {
            writer.append(record)?;
        }
        // append() flushed every record to the OS; the rename makes the
        // compacted file the journal in one step. The open handle follows
        // the inode, so subsequent appends land in `path`.
        std::fs::rename(&tmp, path)?;
        writer.path = path.to_path_buf();
        Ok(writer)
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn append(&mut self, record: &JournalRecord) -> Result<(), JournalError> {
        let payload = encode_record(record);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer
            .write_all(&wire::payload_checksum(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Records appended so far (including any re-appended on resume).
    pub fn records(&self) -> usize {
        self.records
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Loads a journal's records, validating every record against its stored
/// checksum. A truncated or checksum-failing *final* record is silently
/// dropped — that is what a crash mid-append looks like.
///
/// # Errors
///
/// [`JournalError::Corrupt`] for bad magic, a checksum failure on any
/// non-tail record, or a checksum-valid record that still does not
/// decode (writer/reader bug or forged file — tolerating it would hide
/// real corruption).
pub fn load(path: &Path) -> Result<Vec<JournalRecord>, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::Corrupt("bad or missing header".into()));
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            break; // torn record header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let expected = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let start = pos + 8;
        let Some(end) = start.checked_add(len).filter(|&end| end <= bytes.len()) else {
            break; // torn record body
        };
        let payload = &bytes[start..end];
        if wire::payload_checksum(payload) != expected {
            if end == bytes.len() {
                break; // torn write of the final record
            }
            return Err(JournalError::Corrupt(format!(
                "record at byte {pos} fails its checksum"
            )));
        }
        match decode_record(payload) {
            Ok(record) => records.push(record),
            Err(WireError::Malformed(what)) => return Err(JournalError::Corrupt(what)),
            Err(e) => return Err(JournalError::Corrupt(e.to_string())),
        }
        pos = end;
    }
    Ok(records)
}

/// One plan's folded state after [`replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedPlan {
    /// The plan's identity.
    pub fingerprint: u64,
    /// The client that submitted it.
    pub client: String,
    /// Plan-wide execution options.
    pub options: ExecOptions,
    /// The plan's jobs, ascending by id from 0.
    pub jobs: Vec<SweepJob>,
    /// Journaled results in file order, deduplicated by job id (first
    /// occurrence wins — the same dedup as the coordinator's merge).
    pub results: Vec<JobResult>,
    /// A `Completed` record was journaled.
    pub completed: bool,
    /// A `Cancelled` record was journaled.
    pub cancelled: bool,
    /// A `Fetched` record was journaled (the plan can be compacted away).
    pub fetched: bool,
}

impl ReplayedPlan {
    /// Whether a restarted daemon still owes work or results for this
    /// plan: unfinished plans must resume, completed-but-unfetched ones
    /// must keep their results available to the client.
    pub fn live(&self) -> bool {
        !(self.cancelled || (self.completed && self.fetched))
    }

    /// Re-encodes this plan's surviving history as journal records, in
    /// the order a fresh daemon would have written them — what
    /// [`JournalWriter::resume`] compaction appends for live plans.
    pub fn to_records(&self) -> Vec<JournalRecord> {
        let mut records = vec![JournalRecord::Submitted {
            fingerprint: self.fingerprint,
            client: self.client.clone(),
            options: self.options,
            jobs: self.jobs.clone(),
        }];
        for result in &self.results {
            records.push(JournalRecord::Result {
                fingerprint: self.fingerprint,
                result: Box::new(result.clone()),
            });
        }
        if self.completed {
            records.push(JournalRecord::Completed {
                fingerprint: self.fingerprint,
            });
        }
        if self.cancelled {
            records.push(JournalRecord::Cancelled {
                fingerprint: self.fingerprint,
            });
        }
        if self.fetched {
            records.push(JournalRecord::Fetched {
                fingerprint: self.fingerprint,
            });
        }
        records
    }
}

/// Folds a loaded record stream into per-plan state, in submission
/// order. Records for a fingerprint with no `Submitted` record are
/// ignored (the journal is append-only, so they cannot occur without a
/// writer bug; dropping them is the conservative recovery). A repeated
/// `Submitted` for a known fingerprint is likewise ignored — submission
/// is idempotent all the way down.
pub fn replay(records: &[JournalRecord]) -> Vec<ReplayedPlan> {
    let mut plans: Vec<ReplayedPlan> = Vec::new();
    let mut seen_results: Vec<BTreeSet<u64>> = Vec::new();
    for record in records {
        let slot = plans
            .iter()
            .position(|p| p.fingerprint == record.fingerprint());
        match record {
            JournalRecord::Submitted {
                fingerprint,
                client,
                options,
                jobs,
            } => {
                if slot.is_none() {
                    plans.push(ReplayedPlan {
                        fingerprint: *fingerprint,
                        client: client.clone(),
                        options: *options,
                        jobs: jobs.clone(),
                        results: Vec::new(),
                        completed: false,
                        cancelled: false,
                        fetched: false,
                    });
                    seen_results.push(BTreeSet::new());
                }
            }
            JournalRecord::Result { result, .. } => {
                if let Some(i) = slot {
                    if seen_results[i].insert(result.job.id.0) {
                        plans[i].results.push((**result).clone());
                    }
                }
            }
            JournalRecord::Completed { .. } => {
                if let Some(i) = slot {
                    plans[i].completed = true;
                }
            }
            JournalRecord::Cancelled { .. } => {
                if let Some(i) = slot {
                    plans[i].cancelled = true;
                }
            }
            JournalRecord::Fetched { .. } => {
                if let Some(i) = slot {
                    plans[i].fetched = true;
                }
            }
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::units::Seconds;
    use av_scenarios::catalog::ScenarioId;
    use zhuyi_fleet::store::ProbeOutcome;
    use zhuyi_fleet::{JobId, JobKind, JobOutcome, JobSpec, RateSpec, SweepJob};

    fn probe_job(id: u64) -> SweepJob {
        SweepJob {
            id: JobId(id),
            spec: JobSpec {
                scenario: ScenarioId::CutOut.into(),
                seed: id,
                kind: JobKind::Probe {
                    plan: RateSpec::Uniform(4.0),
                    keep_trace: false,
                },
            },
        }
    }

    fn probe_result(id: u64, collided: bool) -> JobResult {
        JobResult {
            job: probe_job(id),
            outcome: JobOutcome::Probe(ProbeOutcome {
                collided,
                collision_time: None,
                collision_actor: None,
                min_clearance: Some(av_core::units::Meters(1.5)),
                duration: Seconds(25.0),
                trace_csv: None,
            }),
        }
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Submitted {
                fingerprint: 0xaa,
                client: "client-a".into(),
                options: ExecOptions::default(),
                jobs: vec![probe_job(0), probe_job(1)],
            },
            JournalRecord::Submitted {
                fingerprint: 0xbb,
                client: "client-b".into(),
                options: ExecOptions {
                    record_traces: false,
                    batch_lanes: 0,
                    seed_blocks: 4,
                },
                jobs: vec![probe_job(0)],
            },
            JournalRecord::Result {
                fingerprint: 0xaa,
                result: Box::new(probe_result(0, true)),
            },
            JournalRecord::Result {
                fingerprint: 0xaa,
                result: Box::new(probe_result(1, false)),
            },
            JournalRecord::Completed { fingerprint: 0xaa },
            JournalRecord::Cancelled { fingerprint: 0xbb },
            JournalRecord::Fetched { fingerprint: 0xaa },
        ]
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zhuyi-distd-jrnl-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join("journal.bin")
    }

    #[test]
    fn write_load_round_trip() {
        let path = tmp("roundtrip");
        let originals = sample_records();
        let mut w = JournalWriter::create(&path).expect("create");
        for record in &originals {
            w.append(record).expect("append");
        }
        assert_eq!(w.records(), originals.len());
        drop(w);
        assert_eq!(load(&path).expect("load"), originals);
    }

    #[test]
    fn replay_folds_plans_and_compaction_drops_retired_ones() {
        let plans = replay(&sample_records());
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].fingerprint, 0xaa);
        assert!(plans[0].completed && plans[0].fetched && !plans[0].live());
        assert_eq!(plans[0].results.len(), 2);
        assert_eq!(plans[1].fingerprint, 0xbb);
        assert!(plans[1].cancelled && !plans[1].live());

        // Compaction: only live plans survive the rewrite.
        let path = tmp("compact");
        let live: Vec<JournalRecord> = plans
            .iter()
            .filter(|p| p.live())
            .flat_map(|p| p.to_records())
            .collect();
        drop(JournalWriter::resume(&path, &live).expect("resume"));
        assert!(load(&path).expect("reload").is_empty());
    }

    #[test]
    fn replay_dedups_results_and_repeated_submits() {
        let records = vec![
            JournalRecord::Submitted {
                fingerprint: 1,
                client: "c".into(),
                options: ExecOptions::default(),
                jobs: vec![probe_job(0)],
            },
            JournalRecord::Submitted {
                fingerprint: 1,
                client: "other".into(),
                options: ExecOptions::default(),
                jobs: vec![probe_job(0)],
            },
            JournalRecord::Result {
                fingerprint: 1,
                result: Box::new(probe_result(0, true)),
            },
            JournalRecord::Result {
                fingerprint: 1,
                result: Box::new(probe_result(0, false)),
            },
            // Orphan records for a never-submitted plan are dropped.
            JournalRecord::Result {
                fingerprint: 9,
                result: Box::new(probe_result(0, false)),
            },
            JournalRecord::Completed { fingerprint: 9 },
        ];
        let plans = replay(&records);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].client, "c", "first submit wins");
        assert_eq!(plans[0].results, vec![probe_result(0, true)]);
        assert!(plans[0].live());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        let originals = sample_records();
        let mut w = JournalWriter::create(&path).expect("create");
        for record in &originals {
            w.append(record).expect("append");
        }
        drop(w);
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear");
        let loaded = load(&path).expect("load survives torn tail");
        assert_eq!(loaded, originals[..originals.len() - 1]);
    }

    #[test]
    fn bad_magic_is_refused() {
        let path = tmp("magic");
        std::fs::write(&path, b"not a journal").expect("clobber");
        assert!(matches!(load(&path), Err(JournalError::Corrupt(_))));
    }

    /// Deterministic xorshift64* for the corruption fuzzers below.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The fuzzers' shared oracle: whatever `load` accepts must be a
    /// prefix of what was written — corruption may cost records or fail
    /// the load, but can never change or invent one.
    fn assert_prefix_of_originals(loaded: &[JournalRecord], originals: &[JournalRecord]) {
        assert!(loaded.len() <= originals.len());
        for (got, want) in loaded.iter().zip(originals) {
            assert_eq!(got, want, "accepted record must be byte-faithful");
        }
    }

    #[test]
    fn truncation_fuzz_never_panics_and_never_lies() {
        let path = tmp("fuzz-trunc");
        let originals = sample_records();
        let mut w = JournalWriter::create(&path).expect("create");
        for record in &originals {
            w.append(record).expect("append");
        }
        drop(w);
        let bytes = std::fs::read(&path).expect("read");
        let mut rng = 0x5eed_1064_u64;
        for _ in 0..200 {
            let cut = (xorshift(&mut rng) as usize) % (bytes.len() + 1);
            std::fs::write(&path, &bytes[..cut]).expect("truncate");
            match load(&path) {
                Ok(loaded) => {
                    assert_prefix_of_originals(&loaded, &originals);
                    // Replaying a damaged-but-accepted stream never
                    // panics either (this is what a restarting daemon
                    // actually does with the load).
                    let _ = replay(&loaded);
                }
                Err(JournalError::Corrupt(_)) => {} // header lost — fine
                Err(e) => panic!("unexpected error on truncation at {cut}: {e}"),
            }
        }
    }

    #[test]
    fn bitflip_fuzz_never_panics_and_never_lies() {
        let path = tmp("fuzz-flip");
        let originals = sample_records();
        let mut w = JournalWriter::create(&path).expect("create");
        for record in &originals {
            w.append(record).expect("append");
        }
        drop(w);
        let bytes = std::fs::read(&path).expect("read");
        let mut rng = 0xf1ea_1064_u64;
        for _ in 0..300 {
            let mut mutated = bytes.clone();
            let bit = (xorshift(&mut rng) as usize) % (mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            std::fs::write(&path, &mutated).expect("flip");
            match load(&path) {
                // A flip can hide in a record header in ways that only
                // truncate the accepted set (e.g. a larger length makes
                // the record read as torn) — but an accepted record must
                // still be exactly what was written.
                Ok(loaded) => {
                    assert_prefix_of_originals(&loaded, &originals);
                    let _ = replay(&loaded);
                }
                Err(JournalError::Corrupt(_)) => {}
                Err(e) => panic!("unexpected error on bit {bit}: {e}"),
            }
        }
    }
}
