//! The distribution CLIs must reject malformed flag values loudly: a
//! clear message on stderr and a non-zero exit code, never a silently
//! reinterpreted sweep.

use std::process::{Command, Output};

fn fleet_sweep(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fleet_sweep"))
        .args(args)
        .output()
        .expect("run fleet_sweep")
}

fn fleet_shard(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fleet_shard"))
        .args(args)
        .output()
        .expect("run fleet_shard")
}

/// Asserts a usage failure: exit code 2 and a message mentioning `hint`.
fn assert_rejected(out: &Output, hint: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected exit 2, got {:?}; stderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("error:"),
        "stderr must carry an error line: {stderr}"
    );
    assert!(
        stderr.contains(hint),
        "stderr must mention {hint:?}: {stderr}"
    );
}

#[test]
fn help_exits_zero() {
    assert_eq!(fleet_sweep(&["--help"]).status.code(), Some(0));
    assert_eq!(fleet_shard(&["--help"]).status.code(), Some(0));
}

#[test]
fn malformed_workers_values_are_rejected() {
    assert_rejected(&fleet_sweep(&["--workers", "zero"]), "--workers");
    assert_rejected(&fleet_sweep(&["--workers", "-3"]), "--workers");
    // 0 is reserved for an external-workers-only coordinator.
    assert_rejected(&fleet_sweep(&["--workers", "0"]), "--listen");
    assert_rejected(&fleet_sweep(&["--workers"]), "expects a value");
}

#[test]
fn malformed_connect_addresses_are_rejected() {
    assert_rejected(&fleet_sweep(&["--connect", "127.0.0.1"]), "host:port");
    assert_rejected(&fleet_sweep(&["--connect", "not an address"]), "--connect");
    assert_rejected(&fleet_shard(&["--connect", "nohost:"]), "--connect");
    assert_rejected(&fleet_shard(&[]), "--connect");
}

#[test]
fn malformed_checkpoint_paths_are_rejected() {
    assert_rejected(
        &fleet_sweep(&["--dist", "--checkpoint", "/no/such/dir/anywhere/sweep.ckpt"]),
        "does not exist",
    );
    assert_rejected(
        &fleet_sweep(&["--dist", "--checkpoint", ""]),
        "--checkpoint",
    );
}

#[test]
fn conflicting_distribution_flags_are_rejected() {
    assert_rejected(
        &fleet_sweep(&["--checkpoint", "sweep.ckpt"]),
        "requires --dist",
    );
    assert_rejected(&fleet_sweep(&["--batch", "4"]), "requires --dist");
    assert_rejected(
        &fleet_sweep(&["--dist", "--connect", "127.0.0.1:7700"]),
        "--dist",
    );
    assert_rejected(
        &fleet_sweep(&["--connect", "127.0.0.1:7700", "--json", "out.json"]),
        "--json",
    );
    assert_rejected(
        &fleet_sweep(&["--connect", "127.0.0.1:7700", "--mode", "msf"]),
        "--mode",
    );
    assert_rejected(&fleet_sweep(&["--dist", "--batch", "0"]), "--batch");
}

#[test]
fn malformed_mode_specific_values_are_rejected() {
    assert_rejected(&fleet_sweep(&["--mode", "warp"]), "unknown mode");
    assert_rejected(
        &fleet_sweep(&["--mode", "percam", "--plans", "sideways"]),
        "unknown per-camera plan",
    );
    assert_rejected(
        &fleet_sweep(&["--mode", "percam", "--plans", "99"]),
        "out of 0..",
    );
    assert_rejected(&fleet_shard(&["--fail-after", "0"]), "--fail-after");
}

#[test]
fn malformed_batch_lanes_values_are_rejected() {
    assert_rejected(&fleet_sweep(&["--batch-lanes", "x"]), "--batch-lanes");
    assert_rejected(&fleet_sweep(&["--batch-lanes", "-1"]), "--batch-lanes");
    assert_rejected(&fleet_sweep(&["--batch-lanes"]), "expects a value");
    // Trace-recording probes always take the per-rate classic path, so a
    // batching request alongside would be silently ignored — reject it.
    assert_rejected(
        &fleet_sweep(&["--record-traces", "--batch-lanes", "4"]),
        "--record-traces",
    );
    // Lane batching only exists on the MSF candidate grid.
    assert_rejected(
        &fleet_sweep(&["--mode", "probe", "--batch-lanes", "2"]),
        "--batch-lanes",
    );
    // A --connect worker inherits batching from the coordinator's
    // Welcome frame; a local flag would be dead.
    assert_rejected(
        &fleet_sweep(&["--connect", "127.0.0.1:7700", "--batch-lanes", "2"]),
        "--batch-lanes",
    );
}

#[test]
fn malformed_chaos_values_are_rejected() {
    assert_rejected(
        &fleet_sweep(&["--dist", "--chaos-seed", "lots"]),
        "--chaos-seed",
    );
    assert_rejected(
        &fleet_sweep(&["--dist", "--chaos-seed", "-1"]),
        "--chaos-seed",
    );
    assert_rejected(
        &fleet_sweep(&[
            "--dist",
            "--chaos-seed",
            "7",
            "--chaos-profile",
            "hurricane",
        ]),
        "--chaos-profile",
    );
    // The unknown-profile message lists what is valid.
    let out = fleet_sweep(&["--dist", "--chaos-seed", "7", "--chaos-profile", "bogus"]);
    assert_rejected(&out, "storm");
    assert_rejected(&fleet_sweep(&["--dist", "--chaos-seed"]), "expects a value");
    assert_rejected(&fleet_shard(&["--chaos-seed", "many"]), "--chaos-seed");
    assert_rejected(
        &fleet_shard(&["--connect", "127.0.0.1:7700", "--chaos-profile", "storm"]),
        "--chaos-seed",
    );
}

#[test]
fn chaos_and_verify_flags_require_dist() {
    assert_rejected(&fleet_sweep(&["--chaos-seed", "7"]), "requires --dist");
    assert_rejected(
        &fleet_sweep(&["--max-job-failures", "3"]),
        "requires --dist",
    );
    assert_rejected(
        &fleet_sweep(&["--verify-fraction", "0.5"]),
        "requires --dist",
    );
    assert_rejected(&fleet_sweep(&["--fail-after", "2"]), "requires --dist");
    // A profile without a seed has no fault stream to shape.
    assert_rejected(
        &fleet_sweep(&["--dist", "--chaos-profile", "storm"]),
        "--chaos-seed",
    );
    // A --connect worker takes its faults from fleet_shard flags, not
    // these coordinator knobs.
    assert_rejected(
        &fleet_sweep(&["--connect", "127.0.0.1:7700", "--chaos-seed", "7"]),
        "coordinator",
    );
    assert_rejected(
        &fleet_sweep(&["--connect", "127.0.0.1:7700", "--verify-fraction", "1"]),
        "coordinator",
    );
}

#[test]
fn malformed_quarantine_and_verify_values_are_rejected() {
    assert_rejected(
        &fleet_sweep(&["--dist", "--max-job-failures", "0"]),
        "--max-job-failures",
    );
    assert_rejected(
        &fleet_sweep(&["--dist", "--max-job-failures", "three"]),
        "--max-job-failures",
    );
    for bad in ["1.5", "-0.1", "nan", "inf", "half"] {
        assert_rejected(
            &fleet_sweep(&["--dist", "--verify-fraction", bad]),
            "--verify-fraction",
        );
    }
    assert_rejected(
        &fleet_sweep(&["--dist", "--fail-after", "0"]),
        "--fail-after",
    );
}

#[test]
fn telemetry_flags_are_cross_validated() {
    // --metrics-listen binds a coordinator-side endpoint; without --dist
    // there is no coordinator to serve it.
    assert_rejected(
        &fleet_sweep(&["--metrics-listen", "127.0.0.1:9100"]),
        "requires --dist",
    );
    // --telemetry-out names the artifact --telemetry produces.
    assert_rejected(&fleet_sweep(&["--telemetry-out", "t.json"]), "--telemetry");
    assert_rejected(
        &fleet_sweep(&["--dist", "--telemetry-out", "t.json"]),
        "--telemetry",
    );
    // Malformed bind addresses are caught before any socket opens.
    assert_rejected(
        &fleet_sweep(&["--dist", "--metrics-listen", "nonsense"]),
        "--metrics-listen",
    );
    assert_rejected(&fleet_sweep(&["--telemetry-out"]), "expects a value");
    // A --connect worker inherits telemetry from the Welcome handshake;
    // local flags would be dead.
    for flag in [
        &["--telemetry"][..],
        &["--telemetry-out", "t.json"][..],
        &["--metrics-listen", "127.0.0.1:9100"][..],
    ] {
        let mut args = vec!["--connect", "127.0.0.1:7700"];
        args.extend_from_slice(flag);
        assert_rejected(&fleet_sweep(&args), "coordinator");
    }
}

#[test]
fn malformed_shard_fault_hooks_are_rejected() {
    let base = ["--connect", "127.0.0.1:7700"];
    let with = |extra: &[&str]| {
        let mut args = base.to_vec();
        args.extend_from_slice(extra);
        fleet_shard(&args)
    };
    assert_rejected(&with(&["--poison-job", "five"]), "--poison-job");
    assert_rejected(&with(&["--wedge-job", "-2"]), "--wedge-job");
    assert_rejected(&with(&["--corrupt-job", "5:"]), "--corrupt-job");
    assert_rejected(&with(&["--corrupt-job", "5:0"]), "--corrupt-job");
    assert_rejected(&with(&["--corrupt-job", ":3"]), "--corrupt-job");
    assert_rejected(&with(&["--corrupt-job", "x:y"]), "--corrupt-job");
    assert_rejected(&with(&["--slow-start", "soon"]), "--slow-start");
    assert_rejected(&with(&["--slow-start"]), "expects a value");
}

#[test]
fn daemon_mode_flags_are_cross_validated() {
    // --daemon without its two required companions.
    assert_rejected(&fleet_sweep(&["--daemon"]), "--listen");
    assert_rejected(
        &fleet_sweep(&["--daemon", "--listen", "127.0.0.1:0"]),
        "--journal",
    );
    // Malformed values for the daemon knobs.
    assert_rejected(
        &fleet_sweep(&[
            "--daemon",
            "--listen",
            "127.0.0.1:0",
            "--journal",
            "/no/such/dir/anywhere/fleet.journal",
        ]),
        "does not exist",
    );
    assert_rejected(&fleet_sweep(&["--journal", ""]), "--journal");
    let daemon = |extra: &[&str]| {
        let mut args = vec!["--daemon", "--listen", "127.0.0.1:0", "--journal", "fj.j"];
        args.extend_from_slice(extra);
        fleet_sweep(&args)
    };
    assert_rejected(&daemon(&["--max-queue", "0"]), "--max-queue");
    assert_rejected(&daemon(&["--max-queue", "full"]), "--max-queue");
    assert_rejected(&daemon(&["--lease-secs", "0"]), "--lease-secs");
    assert_rejected(&daemon(&["--lease-secs"]), "expects a value");
    // Mode conflicts: the daemon is neither a one-shot coordinator nor a
    // client nor a worker.
    assert_rejected(&daemon(&["--dist"]), "--dist");
    assert_rejected(&daemon(&["--submit", "127.0.0.1:7700"]), "--submit");
    assert_rejected(&daemon(&["--checkpoint", "sweep.ckpt"]), "--checkpoint");
    assert_rejected(&daemon(&["--drain"]), "--drain");
    assert_rejected(&daemon(&["--json", "out.json"]), "--json");
    // Plan-shaping flags belong to submitting clients.
    assert_rejected(&daemon(&["--mode", "msf"]), "--mode");
    assert_rejected(&daemon(&["--variants", "5"]), "--variants");
    // Daemon/client knobs floating free of their mode.
    assert_rejected(&fleet_sweep(&["--journal", "fj.j"]), "requires --daemon");
    assert_rejected(&fleet_sweep(&["--max-queue", "4"]), "requires --daemon");
    assert_rejected(&fleet_sweep(&["--lease-secs", "60"]), "requires --daemon");
}

#[test]
fn submit_mode_flags_are_cross_validated() {
    // Malformed daemon addresses are caught before any socket opens.
    assert_rejected(&fleet_sweep(&["--submit", "127.0.0.1"]), "host:port");
    assert_rejected(&fleet_sweep(&["--submit"]), "expects a value");
    let submit = |extra: &[&str]| {
        let mut args = vec!["--submit", "127.0.0.1:7700"];
        args.extend_from_slice(extra);
        fleet_sweep(&args)
    };
    // --submit hands the sweep to the daemon; local execution modes and
    // daemon-side knobs conflict.
    assert_rejected(&submit(&["--dist"]), "--dist");
    assert_rejected(&submit(&["--listen", "127.0.0.1:0"]), "--listen");
    assert_rejected(&submit(&["--connect", "127.0.0.1:7700"]), "--connect");
    assert_rejected(&submit(&["--checkpoint", "sweep.ckpt"]), "--checkpoint");
    assert_rejected(&submit(&["--journal", "fj.j"]), "--journal");
    assert_rejected(&submit(&["--max-queue", "4"]), "--max-queue");
    assert_rejected(&submit(&["--telemetry"]), "--telemetry");
    // Retry knob values are validated.
    assert_rejected(&submit(&["--retry-max", "many"]), "--retry-max");
    assert_rejected(&submit(&["--retry-base-ms", "0"]), "--retry-base-ms");
    assert_rejected(&submit(&["--retry-base-ms", "soon"]), "--retry-base-ms");
    // Chaos on the submit link still needs its seed.
    assert_rejected(&submit(&["--chaos-profile", "storm"]), "--chaos-seed");
    // Client knobs floating free of --submit.
    assert_rejected(&fleet_sweep(&["--drain"]), "requires --submit");
    assert_rejected(&fleet_sweep(&["--retry-max", "3"]), "requires --submit");
    assert_rejected(
        &fleet_sweep(&["--retry-base-ms", "50"]),
        "requires --submit",
    );
    // And a --connect worker rejects the whole daemon/client family.
    for extra in [
        &["--daemon"][..],
        &["--submit", "127.0.0.1:7701"][..],
        &["--journal", "fj.j"][..],
        &["--drain"][..],
        &["--retry-max", "3"][..],
    ] {
        let mut args = vec!["--connect", "127.0.0.1:7700"];
        args.extend_from_slice(extra);
        assert_rejected(&fleet_sweep(&args), "--connect worker");
    }
}

#[test]
fn scenario_registry_flags_are_validated() {
    // The committed catalog ports, for cases that need a loadable dir.
    let catalog = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");

    // Missing or unreadable directory.
    assert_rejected(
        &fleet_sweep(&["--scenario-dir", "/nonexistent-zhuyi-scenarios"]),
        "cannot read scenario dir",
    );

    // A directory with no definitions at all.
    let empty = std::env::temp_dir().join(format!("zhuyi-cli-empty-{}", std::process::id()));
    std::fs::create_dir_all(&empty).expect("temp dir");
    assert_rejected(
        &fleet_sweep(&["--scenario-dir", empty.to_str().expect("utf-8 path")]),
        "no .scn files",
    );

    // A filter that matches no definition names that error names the
    // available scenarios so the typo is findable.
    let out = fleet_sweep(&["--scenario-dir", catalog, "--scenarios", "no-such-*"]);
    assert_rejected(&out, "matched nothing");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("Cut-out"),
        "the empty-match error must list what is available"
    );

    // A malformed definition fails loudly with its path and line.
    let broken = std::env::temp_dir().join(format!("zhuyi-cli-broken-{}", std::process::id()));
    std::fs::create_dir_all(&broken).expect("temp dir");
    std::fs::write(
        broken.join("bad.scn"),
        "zhuyi-scenario v1\n\nname = Bad\nwheels = 5\n",
    )
    .expect("write bad.scn");
    assert_rejected(
        &fleet_sweep(&["--scenario-dir", broken.to_str().expect("utf-8 path")]),
        "bad.scn",
    );

    // A --connect worker has no plan of its own; registry flags are
    // plan-shaping and must be rejected like the rest.
    assert_rejected(
        &fleet_sweep(&["--connect", "127.0.0.1:7700", "--scenario-dir", catalog]),
        "--scenario-dir",
    );
}
