//! Chaos hardening: a distributed sweep under deterministic fault
//! injection — dropped/delayed/duplicated/truncated/bit-flipped frames,
//! hard worker crashes, poisoned (always-panicking) jobs, wedged jobs —
//! must still terminate, quarantine exactly the poisoned work, and keep
//! every *completed* job's exports byte-identical to a clean
//! single-process run.
//!
//! Workers are real OS processes (the `fleet_shard` binary cargo builds
//! alongside these tests), talking to the coordinator over loopback TCP.

use std::path::PathBuf;
use std::time::Duration;
use zhuyi_distd::wire::{self, Frame, JobErrorKind};
use zhuyi_distd::{faultnet, run_distributed, ChaosSpec, DistConfig, DistError, PROTOCOL_VERSION};
use zhuyi_fleet::{
    run_sweep, ExecOptions, JobId, JobKind, JobSpec, RateSpec, ResultStore, SweepJob, SweepPlan,
};

use av_scenarios::catalog::ScenarioId;

/// The worker binary cargo built for this test run.
fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fleet_shard"))
}

/// A compact all-probe plan: 12 quick jobs across two scenarios.
fn small_plan() -> SweepPlan {
    SweepPlan::builder()
        .scenarios([ScenarioId::CutOut, ScenarioId::VehicleFollowing])
        .jittered_variants(3)
        .probe(4.0, false)
        .probe(30.0, false)
        .build()
}

/// Every exported byte: per-job CSV ledger, JSON document, kept traces.
fn fingerprint(store: &ResultStore) -> String {
    let mut bytes = String::new();
    bytes.push_str(&store.to_csv());
    bytes.push_str(&store.to_json());
    for (name, csv) in store.kept_traces() {
        bytes.push_str(&name);
        bytes.push_str(csv);
    }
    bytes
}

/// The single-process reference bytes with `drop_id` filtered out — what
/// graceful degradation promises for the completed remainder.
fn fingerprint_without(plan: &SweepPlan, drop_id: u64) -> String {
    let full = run_sweep(plan, 1);
    let kept: Vec<_> = full
        .results()
        .iter()
        .filter(|r| r.job.id.0 != drop_id)
        .cloned()
        .collect();
    fingerprint(&ResultStore::new(kept))
}

fn config() -> DistConfig {
    DistConfig {
        spawn_workers: 2,
        worker_binary: Some(worker_binary()),
        batch_size: Some(3),
        ..DistConfig::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zhuyi-chaos-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The acceptance scenario: a fault storm on every worker uplink, one
/// worker crashing hard mid-sweep, one job that panics every time it is
/// executed, and duplicate-execution sampling on top. The sweep must
/// complete, quarantine exactly the poisoned job after exactly K
/// strikes, and export the completed jobs byte-identically to a clean
/// single-process run.
#[test]
fn storm_crash_and_poison_still_export_clean_bytes() {
    let plan = small_plan();
    let poisoned = 5u64;
    let expected = fingerprint_without(&plan, poisoned);

    let mut config = config();
    config.spawn_workers = 3;
    config.max_respawns = 8;
    config.max_job_failures = 3;
    config.verify_fraction = 0.25;
    config.chaos = Some(ChaosSpec {
        seed: 0xc4a0_5001,
        profile: faultnet::profile("storm").expect("built-in profile"),
    });
    config.worker_extra_args = vec![
        vec![
            "--fail-after".into(),
            "2".into(),
            "--poison-job".into(),
            poisoned.to_string(),
        ],
        vec!["--poison-job".into(), poisoned.to_string()],
        vec!["--poison-job".into(), poisoned.to_string()],
    ];
    // Replacements stay poisoned (the job is bad everywhere) but run
    // with a clean transport and no --fail-after, so the fleet heals.
    config.respawn_extra_args = vec!["--poison-job".into(), poisoned.to_string()];

    let report = run_distributed(&plan, &config).expect("sweep survives the storm");

    assert_eq!(
        fingerprint(&report.store),
        expected,
        "completed jobs must export the clean single-process bytes"
    );
    let stats = &report.stats;
    assert_eq!(stats.jobs_quarantined, 1, "{stats:?}");
    assert_eq!(
        report.quarantine.len(),
        1,
        "exactly the poisoned job is quarantined"
    );
    let entry = &report.quarantine.entries()[0];
    assert_eq!(entry.job.id.0, poisoned);
    assert_eq!(
        entry.strikes.len(),
        3,
        "quarantine takes exactly K strikes: {:?}",
        entry.strikes
    );
    assert!(
        entry
            .strikes
            .iter()
            .all(|s| s.kind == JobErrorKind::Panic && s.detail.contains("poisoned job 5")),
        "every strike is the contained panic: {:?}",
        entry.strikes
    );
    assert_eq!(stats.job_failures, 3, "{stats:?}");
    assert!(stats.verify_jobs > 0, "sampling must pick jobs: {stats:?}");
}

/// Panic containment alone (no chaos, no crash flags): poisoned-job
/// strikes arrive as JobFailed frames from workers that stay alive, so
/// quarantine engages without a single process loss.
#[test]
fn poisoned_job_is_quarantined_without_losing_workers() {
    let plan = small_plan();
    let poisoned = 2u64;
    let expected = fingerprint_without(&plan, poisoned);

    let mut config = config();
    config.max_job_failures = 2;
    config.worker_extra_args = vec![
        vec!["--poison-job".into(), poisoned.to_string()],
        vec!["--poison-job".into(), poisoned.to_string()],
    ];

    let report = run_distributed(&plan, &config).expect("sweep completes");
    assert_eq!(fingerprint(&report.store), expected);
    let stats = &report.stats;
    assert_eq!(
        stats.workers_lost, 0,
        "containment means panics cost no processes: {stats:?}"
    );
    assert_eq!(stats.workers_respawned, 0, "{stats:?}");
    assert_eq!(stats.job_failures, 2, "{stats:?}");
    assert_eq!(stats.jobs_quarantined, 1, "{stats:?}");
    assert_eq!(report.quarantine.entries()[0].job.id.0, poisoned);
}

/// The flight recorder's trigger contract: with telemetry on, quarantine
/// dumps the ring buffer — for the quarantined job and *only* that job.
/// Healthy jobs leave no dump behind, and the folded snapshot accounts
/// the strikes and the quarantine.
#[test]
fn quarantine_dumps_the_flight_recorder_for_exactly_the_poisoned_job() {
    let plan = small_plan();
    let poisoned = 2u64;
    let expected = fingerprint_without(&plan, poisoned);
    let flight_dir = tmp_dir("flight-dump");

    let mut config = config();
    config.max_job_failures = 2;
    config.telemetry = true;
    config.flight_dir = Some(flight_dir.clone());
    config.worker_extra_args = vec![
        vec!["--poison-job".into(), poisoned.to_string()],
        vec!["--poison-job".into(), poisoned.to_string()],
    ];

    let report = run_distributed(&plan, &config).expect("sweep completes");
    assert_eq!(fingerprint(&report.store), expected);
    assert_eq!(report.stats.jobs_quarantined, 1);

    let mut dumps: Vec<String> = std::fs::read_dir(&flight_dir)
        .expect("flight dir")
        .map(|entry| entry.expect("dir entry").file_name().into_string().unwrap())
        .collect();
    dumps.sort();
    assert!(
        dumps.contains(&format!("flight-job{poisoned}-quarantine.json")),
        "quarantine must dump the flight recorder: {dumps:?}"
    );
    assert!(
        dumps
            .iter()
            .all(|name| name.contains(&format!("job{poisoned}-"))),
        "only the poisoned job may leave dumps (panic strikes included): {dumps:?}"
    );

    let dump =
        std::fs::read_to_string(flight_dir.join(format!("flight-job{poisoned}-quarantine.json")))
            .expect("read quarantine dump");
    assert!(
        dump.contains("\"schema\": \"zhuyi.flight.v1\"")
            && dump.contains("\"trigger\": \"quarantine\""),
        "dump must carry the flight schema and trigger: {dump}"
    );
    assert!(
        dump.contains("\"kind\":\"quarantine\""),
        "dump must include the quarantine event itself: {dump}"
    );

    let telemetry = report.telemetry.expect("telemetry snapshot");
    use zhuyi_telemetry::Counter;
    assert_eq!(
        telemetry.counters[Counter::QuarantinedJobs.index()],
        1,
        "folded snapshot must count the quarantine"
    );
    assert_eq!(
        telemetry.counters[Counter::PanicStrikes.index()],
        2,
        "folded snapshot must count both strikes"
    );
    assert!(
        telemetry.counters[Counter::FlightDumps.index()] >= 1,
        "folded snapshot must count the dumps"
    );
}

/// A wedged job (executes forever) cannot panic its way to a strike —
/// the per-job deadline must revoke it, strike it, and eventually
/// quarantine it, while respawned workers finish the rest of the sweep.
#[test]
fn wedged_job_expires_deadlines_and_is_quarantined() {
    let plan = small_plan();
    let wedged = 4u64;
    let expected = fingerprint_without(&plan, wedged);

    let mut config = config();
    config.spawn_workers = 1;
    config.max_respawns = 4;
    config.max_job_failures = 2;
    config.job_deadline = Some(Duration::from_secs(1));
    config.worker_extra_args = vec![vec!["--wedge-job".into(), wedged.to_string()]];
    // Replacements inherit the wedge: the job is bad everywhere, so only
    // quarantine (not a lucky clean worker) can finish the sweep.
    config.respawn_extra_args = vec!["--wedge-job".into(), wedged.to_string()];

    let report = run_distributed(&plan, &config).expect("deadlines unwedge the sweep");
    assert_eq!(fingerprint(&report.store), expected);
    let stats = &report.stats;
    assert_eq!(stats.deadline_strikes, 2, "{stats:?}");
    assert_eq!(stats.jobs_quarantined, 1, "{stats:?}");
    assert!(
        stats.workers_respawned >= 2,
        "each expiry costs the wedged worker: {stats:?}"
    );
    let entry = &report.quarantine.entries()[0];
    assert_eq!(entry.job.id.0, wedged);
    assert!(
        entry
            .strikes
            .iter()
            .all(|s| s.kind == JobErrorKind::Deadline),
        "{:?}",
        entry.strikes
    );
}

/// Duplicate-execution cross-checking must *detect* a worker that
/// returns plausible-but-wrong bytes: every job is verified, both
/// workers corrupt the same job (with different deltas, and growing
/// per-process corruption, so no two executions ever agree), and the
/// sweep must abort with a verification mismatch instead of exporting
/// silently wrong data.
#[test]
fn verification_detects_a_corrupted_result() {
    let plan = small_plan();
    let corrupted = 3u64;

    let mut config = config();
    config.verify_fraction = 1.0;
    config.worker_extra_args = vec![
        vec!["--corrupt-job".into(), format!("{corrupted}:1")],
        vec!["--corrupt-job".into(), format!("{corrupted}:2")],
    ];

    match run_distributed(&plan, &config) {
        Err(DistError::VerifyMismatch { job }) => assert_eq!(job, corrupted),
        other => panic!("corruption must fail verification, got {other:?}"),
    }
}

/// With honest workers, full verification doubles the work and changes
/// nothing: every job confirms, and the exports stay byte-identical to
/// the single-process run.
#[test]
fn full_verification_confirms_every_job_and_exports_identically() {
    let plan = small_plan();
    let single = fingerprint(&run_sweep(&plan, 1));

    let mut config = config();
    config.verify_fraction = 1.0;
    let report = run_distributed(&plan, &config).expect("verified sweep");
    assert_eq!(fingerprint(&report.store), single);
    let stats = &report.stats;
    assert_eq!(stats.verify_jobs, plan.len(), "{stats:?}");
    assert_eq!(stats.verify_confirmed, plan.len(), "{stats:?}");
    assert!(report.quarantine.is_empty());
}

/// Regression for the respawn-failure path: a respawn attempt that
/// fails to start (here: the worker binary vanishes) must not burn the
/// whole respawn budget — the coordinator retries with backoff and
/// heals once the binary is back.
#[test]
fn failed_respawn_is_retried_with_backoff() {
    let plan = small_plan();
    let single = fingerprint(&run_sweep(&plan, 1));
    let dir = tmp_dir("respawn-retry");
    let flaky = dir.join("fleet_shard_flaky");
    std::fs::copy(worker_binary(), &flaky).expect("stage worker binary");

    let mut config = config();
    config.spawn_workers = 1;
    config.worker_binary = Some(flaky.clone());
    config.max_respawns = 20;
    // The worker idles half a second before connecting, then crashes
    // after its first result — while the binary is missing, so the first
    // respawn attempt(s) must fail.
    config.worker_extra_args = vec![vec![
        "--slow-start".into(),
        "500".into(),
        "--fail-after".into(),
        "1".into(),
    ]];

    let saboteur = {
        let flaky = flaky.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            std::fs::remove_file(&flaky).expect("remove staged binary");
            std::thread::sleep(Duration::from_millis(2500));
            std::fs::copy(worker_binary(), &flaky).expect("restore staged binary");
        })
    };

    let report = run_distributed(&plan, &config).expect("sweep heals after the binary returns");
    saboteur.join().expect("saboteur thread");

    assert_eq!(fingerprint(&report.store), single);
    let stats = &report.stats;
    assert!(
        stats.respawn_failures >= 1,
        "the missing binary must fail at least one attempt: {stats:?}"
    );
    assert!(stats.workers_respawned >= 1, "{stats:?}");
    assert!(report.quarantine.is_empty());
}

/// Frame-level containment contract, pinned against a real worker by a
/// scripted coordinator: a poisoned job yields JobFailed (not a dead
/// process), the rest of the batch still executes, and the worker exits
/// cleanly on Shutdown.
#[test]
fn contained_panic_reports_jobfailed_and_worker_survives() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let mut child = std::process::Command::new(worker_binary())
        .args(["--connect", &addr, "--poison-job", "1"])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn worker");

    let (mut stream, _) = listener.accept().expect("worker connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    assert!(matches!(
        wire::read_frame(&mut stream).expect("hello"),
        Frame::Hello { version, .. } if version == PROTOCOL_VERSION
    ));
    wire::write_frame(
        &mut stream,
        &Frame::Welcome {
            version: PROTOCOL_VERSION,
            telemetry: false,
        },
    )
    .expect("welcome");

    let job = |id: u64| SweepJob {
        id: JobId(id),
        spec: JobSpec {
            scenario: ScenarioId::VehicleFollowing.into(),
            seed: 0,
            kind: JobKind::Probe {
                plan: RateSpec::Uniform(30.0),
                keep_trace: false,
            },
        },
    };
    wire::write_frame(
        &mut stream,
        &Frame::Assign {
            batch: 0,
            options: ExecOptions::default(),
            jobs: vec![job(1), job(2)],
        },
    )
    .expect("assign");

    let mut failed = Vec::new();
    let mut delivered = Vec::new();
    loop {
        match wire::read_frame(&mut stream).expect("worker frame") {
            Frame::JobFailed { job, error } => {
                assert_eq!(error.kind, JobErrorKind::Panic);
                assert!(
                    error.detail.contains("poisoned job 1"),
                    "the panic message crosses the wire: {}",
                    error.detail
                );
                failed.push(job);
            }
            Frame::Result { result } => delivered.push(result.job.id.0),
            Frame::BatchDone { batch: 0 } => break,
            Frame::Heartbeat => {}
            other => panic!("unexpected worker frame {other:?}"),
        }
    }
    assert_eq!(failed, vec![1], "the poisoned job fails exactly once");
    assert_eq!(delivered, vec![2], "the healthy job still executes");

    wire::write_frame(&mut stream, &Frame::Shutdown).expect("shutdown");
    let status = child.wait().expect("worker exit");
    assert!(
        status.success(),
        "a contained panic must not kill the worker: {status:?}"
    );
}
