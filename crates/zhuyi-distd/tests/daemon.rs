//! Sweep-service robustness: the persistent daemon must survive
//! `kill -9` mid-queue and resume every admitted plan from its journal,
//! a full admission queue must answer `Busy` (never hang, never drop
//! silently), drain must exit cleanly with zero journal loss — and
//! through all of it, fetched exports must stay byte-identical to a
//! single-process sweep of the same plan.
//!
//! The daemon runs as a real OS process (the `fleet_sweep` binary cargo
//! builds alongside these tests) so SIGKILL means what it means in
//! production; clients ride the in-crate library with retry/backoff.

use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use av_scenarios::catalog::ScenarioId;
use zhuyi_distd::client;
use zhuyi_distd::journal::{self, JournalRecord};
use zhuyi_distd::wire::{self, Frame, PlanState};
use zhuyi_distd::{faultnet, ChaosSpec, ClientConfig, PROTOCOL_VERSION};
use zhuyi_fleet::{run_sweep, ExecOptions, ResultStore, SweepPlan};

/// The daemon binary cargo built for this test run.
fn daemon_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fleet_sweep"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zhuyi-daemon-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Reserves a loopback port: bind ephemeral, note it, release it. The
/// tiny race against another process is tolerable in a test harness.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

fn spawn_daemon(addr: &str, journal: &Path, workers: usize, extra: &[&str]) -> Child {
    let mut cmd = Command::new(daemon_binary());
    cmd.args([
        "--daemon",
        "--listen",
        addr,
        "--journal",
        &journal.display().to_string(),
        "--workers",
        &workers.to_string(),
    ])
    .args(extra)
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    cmd.spawn().expect("spawn daemon")
}

/// Blocks until the daemon accepts TCP connections (it may be retrying
/// its bind out of a predecessor's TIME_WAIT after a fast restart).
fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match TcpStream::connect(addr) {
            Ok(_) => return,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            Err(e) => panic!("daemon at {addr} never came up: {e}"),
        }
    }
}

/// Waits for the daemon process to exit on its own (post-drain).
fn wait_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not exit within 60 s of the drain"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn client_config(addr: &str, name: &str, seed: u64) -> ClientConfig {
    ClientConfig {
        addr: addr.to_string(),
        name: name.to_string(),
        // Generous budget: the backoff ladder must outlast a daemon
        // kill + restart (a couple of seconds) with margin.
        retry_max: 12,
        retry_base: Duration::from_millis(100),
        seed,
        poll_interval: Duration::from_millis(100),
        ..ClientConfig::default()
    }
}

/// Every exported byte: per-job CSV ledger, JSON document, kept traces.
fn export_bytes(store: &ResultStore) -> String {
    let mut bytes = String::new();
    bytes.push_str(&store.to_csv());
    bytes.push_str(&store.to_json());
    for (name, csv) in store.kept_traces() {
        bytes.push_str(&name);
        bytes.push_str(csv);
    }
    bytes
}

/// A plan big enough that SIGKILL lands mid-sweep (all job kinds, both
/// rate-plan variants, kept traces crossing the wire).
fn plan_a() -> SweepPlan {
    SweepPlan::builder()
        .scenarios([ScenarioId::CutOut, ScenarioId::VehicleFollowing])
        .jittered_variants(6)
        .probe(4.0, true)
        .probe_per_camera(vec![30.0, 15.0, 4.0, 4.0, 2.0], false)
        .min_safe_fpr(vec![1, 4, 30])
        .build()
}

/// A second, distinct plan that sits queued behind `plan_a`.
fn plan_b() -> SweepPlan {
    SweepPlan::builder()
        .scenarios([ScenarioId::FrontRightActivity2])
        .jittered_variants(2)
        .min_safe_fpr(vec![1, 2, 30])
        .build()
}

fn poll_until(config: &ClientConfig, fingerprint: u64, wanted: PlanState) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client::plan_status(config, fingerprint).expect("status poll");
        if status.state == wanted {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "plan {fingerprint:#018x} never reached {}, stuck at {}",
            wanted.name(),
            status.state.name()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The survivability pin: one plan running, one queued, daemon killed
/// with SIGKILL, restarted on the same journal. Backoff clients
/// reconnect on their own, both plans complete, resubmission dedups
/// across the restart, exports are byte-identical to single-process
/// sweeps, each plan is journaled exactly once, and the final drain
/// exits cleanly with the whole history still replayable. The submit
/// link runs under the storm chaos profile throughout — retries, not
/// clean sends, carry every frame.
#[test]
fn sigkilled_daemon_resumes_both_plans_byte_identically() {
    let dir = tmp_dir("pin");
    let journal_path = dir.join("fleet.journal");
    let addr = free_addr();
    let mut daemon = spawn_daemon(&addr, &journal_path, 2, &[]);
    wait_ready(&addr);

    let storm = ChaosSpec {
        seed: 0x5709_1100,
        profile: faultnet::profile("storm").expect("storm profile exists"),
    };
    let mut cfg_a = client_config(&addr, "client-a", 1);
    cfg_a.chaos = Some(storm);
    let mut cfg_b = client_config(&addr, "client-b", 2);
    cfg_b.chaos = Some(storm);
    let options = ExecOptions::default();
    let (plan_a, plan_b) = (plan_a(), plan_b());

    // Plan A admitted and running; plan B queued behind it.
    let out_a = client::submit_plan(&cfg_a, &plan_a, options).expect("submit plan A");
    assert!(!out_a.deduped, "first submission cannot dedup");
    poll_until(&cfg_a, out_a.fingerprint, PlanState::Running);
    let out_b = client::submit_plan(&cfg_b, &plan_b, options).expect("submit plan B");
    assert!(!out_b.deduped);
    assert_eq!(
        client::plan_status(&cfg_b, out_b.fingerprint)
            .expect("status B")
            .state,
        PlanState::Queued,
        "plan B must sit queued behind the running plan A"
    );

    // SIGKILL mid-queue: no drain, no journal fsync beyond the per-record
    // flushes already done.
    daemon.kill().expect("SIGKILL daemon");
    daemon.wait().expect("reap daemon");

    // Plan A's client starts waiting *while the daemon is down*: its
    // backoff ladder must carry it across the outage.
    let waiter_cfg = cfg_a.clone();
    let fp_a = out_a.fingerprint;
    let waiter_a = std::thread::spawn(move || {
        client::wait_for_plan(&waiter_cfg, fp_a)?;
        client::fetch_results(&waiter_cfg, fp_a)
    });
    std::thread::sleep(Duration::from_millis(300));

    // Restart on the same journal: replay re-admits both plans.
    let mut daemon = spawn_daemon(&addr, &journal_path, 2, &[]);
    wait_ready(&addr);

    // Idempotent submission across the restart: the journal already
    // knows plan B, so a retried submit dedups instead of double-running.
    let again = client::submit_plan(&cfg_b, &plan_b, options).expect("resubmit plan B");
    assert!(
        again.deduped,
        "resubmission after restart must dedup by fingerprint"
    );
    assert_eq!(again.fingerprint, out_b.fingerprint);

    // Both plans complete; exports match the single-process bytes.
    let results_a = waiter_a
        .join()
        .expect("waiter thread")
        .expect("plan A completes across the restart");
    client::wait_for_plan(&cfg_b, out_b.fingerprint).expect("plan B completes");
    let results_b = client::fetch_results(&cfg_b, out_b.fingerprint).expect("plan B results fetch");
    assert_eq!(
        export_bytes(&ResultStore::new(results_a)),
        export_bytes(&run_sweep(&plan_a, 1)),
        "plan A exports diverged from the single-process sweep"
    );
    assert_eq!(
        export_bytes(&ResultStore::new(results_b)),
        export_bytes(&run_sweep(&plan_b, 1)),
        "plan B exports diverged from the single-process sweep"
    );

    // Drain: nothing left to finish, daemon exits cleanly.
    let left = client::drain(&cfg_b).expect("drain");
    assert_eq!(left, 0, "both plans were already complete");
    let status = wait_exit(&mut daemon);
    assert!(status.success(), "drained daemon must exit 0: {status:?}");

    // Zero journal loss, exactly-once submission: the full history is
    // still replayable, and each plan was journaled exactly once even
    // though plan B's submit frame was retried across a chaos link and
    // a daemon restart.
    let records = journal::load(&journal_path).expect("journal replays after drain");
    for fp in [out_a.fingerprint, out_b.fingerprint] {
        let submits = records
            .iter()
            .filter(
                |r| matches!(r, JournalRecord::Submitted { fingerprint, .. } if *fingerprint == fp),
            )
            .count();
        assert_eq!(submits, 1, "plan {fp:#018x} must be journaled exactly once");
    }
    let plans = journal::replay(&records);
    assert_eq!(plans.len(), 2);
    for plan in &plans {
        assert!(
            plan.completed && plan.fetched && !plan.live(),
            "drained history must show every plan completed and fetched: {:#018x}",
            plan.fingerprint
        );
    }
}

/// Admission control: a full queue answers `Busy` immediately — it
/// never hangs the session and never drops a submit silently — and a
/// draining daemon sheds every new submit with `Busy {{ queue_limit: 0 }}`.
/// Raw wire frames, so the answer is observed without client retries
/// papering over anything.
#[test]
fn full_queue_answers_busy_and_draining_sheds_submits() {
    let dir = tmp_dir("busy");
    let journal_path = dir.join("fleet.journal");
    let addr = free_addr();
    // Zero workers: admitted plans never finish, so the queue stays full.
    let mut daemon = spawn_daemon(&addr, &journal_path, 0, &["--max-queue", "1"]);
    wait_ready(&addr);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    wire::write_frame(
        &mut stream,
        &Frame::ClientHello {
            version: PROTOCOL_VERSION,
            client: "busy-probe".to_string(),
        },
    )
    .expect("client hello");
    match wire::read_frame(&mut stream).expect("client welcome") {
        Frame::ClientWelcome { version, draining } => {
            assert_eq!(version, PROTOCOL_VERSION);
            assert!(!draining);
        }
        other => panic!("expected ClientWelcome, got {other:?}"),
    }

    // Keep submitting distinct plans until the daemon sheds load. One
    // slot may drain into the (never-finishing) running plan, so at most
    // two are admitted before `Busy`.
    let jobs = plan_b().jobs().to_vec();
    let mut accepted = Vec::new();
    let mut shed = None;
    for i in 0..6u64 {
        wire::write_frame(
            &mut stream,
            &Frame::Submit {
                fingerprint: 0xB05E_0000 + i,
                options: ExecOptions::default(),
                jobs: jobs.clone(),
            },
        )
        .expect("submit");
        match wire::read_frame(&mut stream).expect("submit answer (never a hang)") {
            Frame::Accepted { fingerprint, .. } => accepted.push(fingerprint),
            Frame::Busy { queue_limit } => {
                shed = Some(queue_limit);
                break;
            }
            other => panic!("expected Accepted or Busy, got {other:?}"),
        }
    }
    assert_eq!(
        shed,
        Some(1),
        "a full queue must answer Busy with its bound"
    );
    assert!(
        (1..=2).contains(&accepted.len()),
        "one running slot plus one queue slot: {accepted:?}"
    );

    // Admitted plans are still individually addressable — nothing was
    // silently dropped on the way to the Busy answer.
    wire::write_frame(
        &mut stream,
        &Frame::Status {
            fingerprint: accepted[0],
        },
    )
    .expect("status");
    match wire::read_frame(&mut stream).expect("status answer") {
        Frame::StatusReport { state, .. } => {
            assert!(matches!(state, PlanState::Queued | PlanState::Running));
        }
        other => panic!("expected StatusReport, got {other:?}"),
    }

    // Drain acknowledges every admitted plan, then sheds all new work
    // with a zero-slot Busy.
    wire::write_frame(&mut stream, &Frame::Drain).expect("drain");
    match wire::read_frame(&mut stream).expect("drain answer") {
        Frame::DrainAck { queued } => assert_eq!(queued as usize, accepted.len()),
        other => panic!("expected DrainAck, got {other:?}"),
    }
    wire::write_frame(
        &mut stream,
        &Frame::Submit {
            fingerprint: 0xDEAD_0001,
            options: ExecOptions::default(),
            jobs,
        },
    )
    .expect("submit while draining");
    match wire::read_frame(&mut stream).expect("draining answer") {
        Frame::Busy { queue_limit } => assert_eq!(queue_limit, 0),
        other => panic!("expected Busy{{queue_limit: 0}}, got {other:?}"),
    }

    // Workerless and draining, the daemon can never finish its queue —
    // the test owns its shutdown.
    daemon.kill().expect("kill workerless daemon");
    daemon.wait().expect("reap daemon");
}

/// The undramatic path, end to end through the public client arc:
/// submit + wait + fetch returns the single-process bytes, drain exits
/// zero, and the drained journal still replays the fetched plan.
#[test]
fn run_via_daemon_matches_single_process_and_drains_cleanly() {
    let dir = tmp_dir("arc");
    let journal_path = dir.join("fleet.journal");
    let addr = free_addr();
    let mut daemon = spawn_daemon(&addr, &journal_path, 2, &[]);
    wait_ready(&addr);

    let cfg = client_config(&addr, "client-arc", 7);
    let plan = plan_b();
    let store =
        client::run_via_daemon(&cfg, &plan, ExecOptions::default()).expect("submit + wait + fetch");
    assert_eq!(
        export_bytes(&store),
        export_bytes(&run_sweep(&plan, 1)),
        "daemon-run exports diverged from the single-process sweep"
    );

    assert_eq!(client::drain(&cfg).expect("drain"), 0);
    let status = wait_exit(&mut daemon);
    assert!(status.success(), "drained daemon must exit 0: {status:?}");

    let plans = journal::replay(&journal::load(&journal_path).expect("journal replays"));
    assert_eq!(plans.len(), 1);
    assert!(plans[0].completed && plans[0].fetched && !plans[0].live());
}
