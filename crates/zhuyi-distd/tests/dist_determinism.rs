//! Distribution correctness: a multi-process sweep must export the very
//! bytes a single-process sweep exports — with healthy workers, with a
//! worker killed mid-sweep, and across a checkpoint abort/resume.
//!
//! Workers are real OS processes (the `fleet_shard` binary cargo builds
//! alongside these tests), talking to the coordinator over loopback TCP.

use std::path::PathBuf;
use zhuyi_distd::wire::{self, Frame};
use zhuyi_distd::{run_distributed, DistConfig, DistError, PROTOCOL_VERSION};
use zhuyi_fleet::{
    run_sweep, ExecOptions, JobId, JobKind, JobSpec, RateSpec, ResultStore, SweepJob, SweepPlan,
};

use av_scenarios::catalog::ScenarioId;

/// The worker binary cargo built for this test run.
fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fleet_shard"))
}

/// A compact plan covering all three job kinds and *both* rate-plan
/// variants (uniform and per-camera), plus a kept trace so trace CSV
/// bytes cross the wire too.
fn mixed_plan() -> SweepPlan {
    SweepPlan::builder()
        .scenarios([ScenarioId::CutOut, ScenarioId::VehicleFollowing])
        .jittered_variants(2)
        .probe(4.0, true)
        .probe_per_camera(vec![30.0, 15.0, 4.0, 4.0, 2.0], false)
        .min_safe_fpr(vec![1, 4, 30])
        .build()
}

/// Every exported byte: per-job CSV ledger, JSON document, kept traces.
fn fingerprint(store: &ResultStore) -> String {
    let mut bytes = String::new();
    bytes.push_str(&store.to_csv());
    bytes.push_str(&store.to_json());
    for (name, csv) in store.kept_traces() {
        bytes.push_str(&name);
        bytes.push_str(csv);
    }
    bytes
}

fn config() -> DistConfig {
    DistConfig {
        spawn_workers: 2,
        worker_binary: Some(worker_binary()),
        // Small shards so both workers hold work and reassignment has
        // something to reassign.
        batch_size: Some(3),
        ..DistConfig::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zhuyi-distd-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn distributed_sweep_is_byte_identical_to_single_process() {
    let plan = mixed_plan();
    let single = fingerprint(&run_sweep(&plan, 1));
    let report = run_distributed(&plan, &config()).expect("distributed sweep");
    assert_eq!(
        fingerprint(&report.store),
        single,
        "distributed exports diverged from the single-process sweep"
    );
    assert_eq!(report.stats.executed_jobs, plan.len());
    assert_eq!(report.stats.workers_connected, 2);
    assert_eq!(report.stats.resumed_jobs, 0);
}

#[test]
fn distributed_batched_sweep_matches_per_rate_single_process() {
    // Workers inherit batch_lanes through the Welcome frame; whatever
    // lane batching they run, the merged exports must stay byte-equal to
    // a per-rate single-process sweep of the same plan.
    let plan = SweepPlan::builder()
        .scenarios([ScenarioId::CutOut, ScenarioId::FrontRightActivity2])
        .jittered_variants(2)
        .min_safe_fpr(vec![1, 2, 4, 6, 30])
        .build();
    let per_rate = fingerprint(&zhuyi_fleet::run_sweep_with(
        &plan,
        1,
        ExecOptions {
            batch_lanes: 1,
            ..ExecOptions::default()
        },
    ));
    for batch_lanes in [0usize, 3] {
        let dist_config = DistConfig {
            options: ExecOptions {
                batch_lanes,
                ..ExecOptions::default()
            },
            ..config()
        };
        let report = run_distributed(&plan, &dist_config).expect("distributed batched sweep");
        assert_eq!(
            fingerprint(&report.store),
            per_rate,
            "batch_lanes {batch_lanes}: distributed exports diverged from per-rate"
        );
    }
}

#[test]
fn killed_worker_is_reassigned_and_output_unchanged() {
    let plan = mixed_plan();
    let single = fingerprint(&run_sweep(&plan, 1));
    let mut config = config();
    // Worker 0 crashes hard (exit 17) after streaming two results —
    // mid-shard, since shards carry three jobs.
    config.worker_extra_args = vec![vec!["--fail-after".into(), "2".into()]];
    let report = run_distributed(&plan, &config).expect("sweep survives the crash");
    assert_eq!(
        fingerprint(&report.store),
        single,
        "a worker crash must not change the merged output"
    );
    let stats = report.stats;
    assert!(
        stats.workers_lost >= 1,
        "the fault injection must have killed a worker: {stats:?}"
    );
    assert!(
        stats.batches_reassigned >= 1,
        "the dead worker's shard must have been reassigned: {stats:?}"
    );
    assert_eq!(stats.executed_jobs, plan.len());
}

#[test]
fn checkpoint_resume_completes_the_sweep_identically() {
    let plan = mixed_plan();
    let single = fingerprint(&run_sweep(&plan, 1));
    let checkpoint = tmp_dir("resume").join("sweep.ckpt");

    // First attempt: the abort hook kills the coordinator (checkpoint
    // intact) after three fresh results — a stand-in for a crashed or
    // interrupted coordinator process.
    let mut first = config();
    first.checkpoint = Some(checkpoint.clone());
    first.abort_after_results = Some(3);
    match run_distributed(&plan, &first) {
        Err(DistError::Aborted { completed }) => assert!(completed >= 3),
        other => panic!("expected the abort hook to fire, got {other:?}"),
    }

    // Resume: completed jobs load from the checkpoint, the rest execute.
    let mut second = config();
    second.checkpoint = Some(checkpoint.clone());
    let report = run_distributed(&plan, &second).expect("resumed sweep");
    assert_eq!(
        fingerprint(&report.store),
        single,
        "an abort/resume cycle must not change the merged output"
    );
    let stats = report.stats;
    assert!(
        stats.resumed_jobs >= 3,
        "the resume must reuse checkpointed jobs: {stats:?}"
    );
    assert_eq!(
        stats.resumed_jobs + stats.executed_jobs,
        plan.len(),
        "every job is either resumed or executed exactly once: {stats:?}"
    );

    // A third run over the now-complete checkpoint simulates nothing.
    let mut third = config();
    third.checkpoint = Some(checkpoint);
    let report = run_distributed(&plan, &third).expect("fully checkpointed sweep");
    assert_eq!(fingerprint(&report.store), single);
    assert_eq!(report.stats.executed_jobs, 0);
    assert_eq!(report.stats.resumed_jobs, plan.len());
}

/// Regression: a job revoked from a worker (stolen) and later handed
/// *back* to that same worker — because the thief died — must execute.
/// A worker that never forgets a revocation would skip the job forever
/// and stall the sweep. Driven against a real `fleet_shard` process by a
/// scripted coordinator, so the exact frame order is deterministic.
#[test]
fn reassignment_supersedes_an_earlier_revoke() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let mut child = std::process::Command::new(worker_binary())
        .args(["--connect", &addr])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn worker");

    let (mut stream, _) = listener.accept().expect("worker connects");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .expect("read timeout");
    assert!(matches!(
        wire::read_frame(&mut stream).expect("hello"),
        Frame::Hello { version, .. } if version == PROTOCOL_VERSION
    ));
    wire::write_frame(
        &mut stream,
        &Frame::Welcome {
            version: PROTOCOL_VERSION,
            telemetry: false,
        },
    )
    .expect("welcome");

    let job = |id: u64| SweepJob {
        id: JobId(id),
        spec: JobSpec {
            scenario: ScenarioId::VehicleFollowing.into(),
            seed: 0,
            kind: JobKind::Probe {
                plan: RateSpec::Uniform(30.0),
                keep_trace: false,
            },
        },
    };
    // Read worker frames until the wanted BatchDone, collecting which
    // job ids produced results (heartbeats interleave freely).
    let drain_batch = |stream: &mut std::net::TcpStream, batch: u32| -> Vec<u64> {
        let mut delivered = Vec::new();
        loop {
            match wire::read_frame(stream).expect("worker frame") {
                Frame::Result { result } => delivered.push(result.job.id.0),
                Frame::BatchDone { batch: done } if done == batch => return delivered,
                Frame::Heartbeat | Frame::BatchDone { .. } => {}
                other => panic!("unexpected worker frame {other:?}"),
            }
        }
    };

    // Shard [1, 2] with job 2 stolen away (Revoke may win or lose the
    // race against the worker starting job 2 — both are legal).
    wire::write_frame(
        &mut stream,
        &Frame::Assign {
            batch: 0,
            options: ExecOptions::default(),
            jobs: vec![job(1), job(2)],
        },
    )
    .expect("assign batch 0");
    wire::write_frame(&mut stream, &Frame::Revoke { jobs: vec![2] }).expect("revoke");
    let first = drain_batch(&mut stream, 0);
    assert!(first.contains(&1), "job 1 was never revoked: {first:?}");

    // The thief "died": hand job 2 back. It must run now, whatever
    // happened above.
    wire::write_frame(
        &mut stream,
        &Frame::Assign {
            batch: 1,
            options: ExecOptions::default(),
            jobs: vec![job(2)],
        },
    )
    .expect("assign batch 1");
    let second = drain_batch(&mut stream, 1);
    assert_eq!(
        second,
        vec![2],
        "a reassigned job must supersede its earlier revocation"
    );

    wire::write_frame(&mut stream, &Frame::Shutdown).expect("shutdown");
    let status = child.wait().expect("worker exit");
    assert!(status.success(), "worker must exit cleanly: {status:?}");
}

#[test]
fn generated_corpus_sweeps_identically_distributed_and_single_process() {
    // Registry-defined scenarios cross the wire as canonical definition
    // text (no shared files, no catalog index); a 100-scenario fuzzed
    // corpus must still export the single-process bytes.
    let corpus = zhuyi_registry::FuzzConfig {
        prefix: "dist-fuzz".to_string(),
        count: 100,
        seed: 42,
    }
    .generate();
    assert_eq!(corpus.len(), 100);
    let plan = SweepPlan::builder()
        .sources(corpus.into_iter().map(Into::into))
        .seeds([0])
        .min_safe_fpr(vec![1, 4, 30])
        .build();
    let single = fingerprint(&run_sweep(&plan, 1));
    let report = run_distributed(&plan, &config()).expect("distributed corpus sweep");
    assert_eq!(
        fingerprint(&report.store),
        single,
        "generated-corpus distributed exports diverged from the single-process sweep"
    );
    assert_eq!(report.stats.executed_jobs, plan.len());
}
