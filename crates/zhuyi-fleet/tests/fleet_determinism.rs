//! Fleet determinism and correctness: a multi-threaded sweep must be
//! byte-identical to the same sweep on one thread, and the binary-search
//! minimum-safe-FPR driver must agree with the exhaustive grid scan.

use av_scenarios::catalog::{minimum_required_fpr, ScenarioId};
use zhuyi_fleet::{
    run_sweep, run_sweep_with, ExecOptions, JobOutcome, PredictorChoice, ResultStore, SweepPlan,
};

/// Three scenarios spanning the corpus: one that collides at low rates
/// (Cut-out), one benign highway case (Vehicle following), one with side
/// activity (Front & right 1).
const SCENARIOS: [ScenarioId; 3] = [
    ScenarioId::CutOut,
    ScenarioId::VehicleFollowing,
    ScenarioId::FrontRightActivity1,
];

fn mixed_plan() -> SweepPlan {
    SweepPlan::builder()
        .scenarios(SCENARIOS)
        .jittered_variants(2)
        .probe(4.0, true)
        .min_safe_fpr(vec![1, 4, 30])
        .build()
}

fn fingerprint(store: &ResultStore) -> String {
    let mut bytes = String::new();
    bytes.push_str(&store.to_csv());
    bytes.push_str(&store.to_json());
    for (name, csv) in store.kept_traces() {
        bytes.push_str(&name);
        bytes.push_str(csv);
    }
    bytes
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let plan = mixed_plan();
    let sequential = fingerprint(&run_sweep(&plan, 1));
    for workers in [2, 4] {
        let parallel = fingerprint(&run_sweep(&plan, workers));
        assert_eq!(
            parallel, sequential,
            "sweep output diverged at {workers} workers"
        );
    }
}

#[test]
fn binary_search_agrees_with_exhaustive_scan_across_seeds() {
    let grid = [1u32, 4, 30];
    let store = run_sweep(
        &SweepPlan::builder()
            .scenarios(SCENARIOS)
            .jittered_variants(2)
            .min_safe_fpr(grid.to_vec())
            .build(),
        4,
    );
    for result in store.results() {
        let JobOutcome::MinSafeFpr(search) = &result.outcome else {
            panic!("plan only contains MSF jobs");
        };
        let id = result
            .job
            .spec
            .scenario
            .catalog_id()
            .expect("plan only uses catalog scenarios");
        let expected = minimum_required_fpr(id, &grid, &[result.job.spec.seed]);
        assert_eq!(
            search.mrf, expected,
            "{} seed {}: binary search disagrees with exhaustive scan",
            result.job.spec.scenario, result.job.spec.seed
        );
        assert!(search.sims_run <= search.grid_size);
    }
}

#[test]
fn metrics_only_sweep_matches_trace_recording_sweep() {
    // The streaming fast path is an optimization, not a different
    // experiment: a metrics-only sweep must export the same CSV rows and
    // JSON document, and answer every MsfSearch identically, as the same
    // sweep forced down the classic full-trace path.
    let plan = SweepPlan::builder()
        .scenarios(SCENARIOS)
        .jittered_variants(2)
        .probe(4.0, false)
        .min_safe_fpr(vec![1, 4, 30])
        .build();
    let streaming = run_sweep_with(&plan, 2, ExecOptions::default());
    let recorded = run_sweep_with(
        &plan,
        2,
        ExecOptions {
            record_traces: true,
            ..ExecOptions::default()
        },
    );
    assert_eq!(
        streaming.to_csv(),
        recorded.to_csv(),
        "CSV rows diverged between streaming and trace-recording sweeps"
    );
    assert_eq!(
        streaming.to_json(),
        recorded.to_json(),
        "JSON export diverged between streaming and trace-recording sweeps"
    );
    for (a, b) in streaming.results().iter().zip(recorded.results()) {
        if let (JobOutcome::MinSafeFpr(fast), JobOutcome::MinSafeFpr(slow)) =
            (&a.outcome, &b.outcome)
        {
            assert_eq!(fast, slow, "{}: MsfSearch diverged", a.job.id);
        }
    }
}

#[test]
fn jittered_variants_multiply_the_corpus() {
    let plan = SweepPlan::builder()
        .scenarios(SCENARIOS)
        .jittered_variants(12)
        .probe(30.0, false)
        .build();
    assert_eq!(plan.len(), 3 * 12);
    // Seeds produce distinct jobs, and each rebuilds a distinct scenario
    // instance (seed 0 nominal, others jittered).
    let seeds: std::collections::BTreeSet<u64> = plan.jobs().iter().map(|j| j.spec.seed).collect();
    assert_eq!(seeds.len(), 12);
}

#[test]
fn analyze_jobs_produce_conservative_estimates() {
    // At a safe rate, the Zhuyi estimate must exist and be positive; the
    // CV-predictor path must run the same number of strided steps.
    let store = run_sweep(
        &SweepPlan::builder()
            .scenarios([ScenarioId::VehicleFollowing])
            .seeds([0])
            .analyze(10.0, PredictorChoice::Oracle, 50)
            .analyze(10.0, PredictorChoice::ConstantVelocity, 50)
            .build(),
        2,
    );
    let outcomes: Vec<_> = store
        .results()
        .iter()
        .map(|r| match &r.outcome {
            JobOutcome::Analysis(a) => a,
            other => panic!("expected analysis outcome, got {other:?}"),
        })
        .collect();
    assert_eq!(outcomes.len(), 2);
    for a in &outcomes {
        assert!(!a.collided, "reference run at 10 FPR must be safe");
        assert!(a.steps > 0);
        let est = a.max_camera_fpr.expect("safe run produces an estimate");
        assert!(est > 0.0 && est.is_finite());
    }
}

#[test]
fn shared_context_search_matches_rebuild_per_candidate_across_catalog() {
    // Sweep-level scene sharing: the streaming `min_safe_fpr` runs every
    // candidate on one shared, reset-per-candidate simulation
    // (`SweepContext`), while the trace-recording backend rebuilds the
    // scenario from scratch for every candidate. Both must return the
    // identical search result (answer *and* cost accounting) across the
    // whole jittered catalog — any divergence means a reset leaked state
    // between candidate runs.
    use zhuyi_fleet::{min_safe_fpr, min_safe_fpr_with};
    let grid = [1u32, 4, 30];
    for id in ScenarioId::ALL {
        for seed in [0u64, 6] {
            let scenario = av_scenarios::catalog::Scenario::build(id, seed);
            let shared = min_safe_fpr(&scenario, &grid);
            let rebuilt = min_safe_fpr_with(&scenario, &grid, true);
            assert_eq!(
                shared, rebuilt,
                "{id} seed {seed}: shared-context search diverged from per-candidate rebuild"
            );
        }
    }
}
