//! Fleet-level batched-vs-per-rate export equality: whatever
//! `ExecOptions::batch_lanes` says, a sweep's CSV and JSON exports must
//! be byte-identical — the batched backend replays the per-rate search's
//! accounting, so not even `sims_run` may drift.

use zhuyi_fleet::{run_sweep_with, ExecOptions, SweepPlan};

fn options(batch_lanes: usize) -> ExecOptions {
    ExecOptions {
        batch_lanes,
        ..ExecOptions::default()
    }
}

#[test]
fn msf_sweep_exports_are_identical_across_batch_granularities() {
    // The full jittered catalog (all nine scenarios, two variants each)
    // over the full paper rate grid: per-rate reference, whole-grid
    // batching, and an uneven chunk size that forces multiple passes.
    let plan = SweepPlan::builder()
        .scenarios(av_scenarios::catalog::ScenarioId::ALL)
        .jittered_variants(2)
        .min_safe_fpr(av_scenarios::catalog::PAPER_RATE_GRID.to_vec())
        .build();
    let per_rate = run_sweep_with(&plan, 2, options(1));
    for lanes in [0usize, 5] {
        let batched = run_sweep_with(&plan, 2, options(lanes));
        assert_eq!(
            per_rate.to_csv(),
            batched.to_csv(),
            "batch_lanes {lanes}: CSV export diverged from the per-rate path"
        );
        assert_eq!(
            per_rate.to_json(),
            batched.to_json(),
            "batch_lanes {lanes}: JSON export diverged from the per-rate path"
        );
    }
}

#[test]
fn batch_lanes_does_not_perturb_other_job_kinds() {
    // Probe, per-camera and analyze jobs (all three predictors) never
    // consult batch_lanes; a mixed plan pins that the flag cannot change
    // a byte of their exports either.
    use zhuyi_fleet::PredictorChoice;
    let scenarios = [
        av_scenarios::catalog::ScenarioId::CutOut,
        av_scenarios::catalog::ScenarioId::VehicleFollowing,
    ];
    let mut plans = vec![
        SweepPlan::builder()
            .scenarios(scenarios)
            .jittered_variants(2)
            .probe(4.0, false)
            .build(),
        SweepPlan::builder()
            .scenarios(scenarios)
            .jittered_variants(1)
            .probe_per_camera_plans(
                av_scenarios::catalog::PER_CAMERA_PLANS
                    .iter()
                    .map(|p| p.rates.to_vec()),
                false,
            )
            .build(),
    ];
    for predictor in [
        PredictorChoice::Oracle,
        PredictorChoice::ConstantVelocity,
        PredictorChoice::ConstantAcceleration,
    ] {
        plans.push(
            SweepPlan::builder()
                .scenarios([av_scenarios::catalog::ScenarioId::CutOut])
                .jittered_variants(1)
                .analyze(8.0, predictor, 50)
                .build(),
        );
    }
    for (i, plan) in plans.iter().enumerate() {
        let per_rate = run_sweep_with(plan, 2, options(1));
        let batched = run_sweep_with(plan, 2, options(0));
        assert_eq!(
            per_rate.to_csv(),
            batched.to_csv(),
            "plan {i}: non-MSF exports diverged under batch_lanes"
        );
    }
}

#[test]
fn record_traces_keeps_the_classic_path_whatever_batch_lanes_says() {
    let plan = SweepPlan::builder()
        .scenarios([av_scenarios::catalog::ScenarioId::CutOutFast])
        .jittered_variants(1)
        .min_safe_fpr(vec![1, 4, 30])
        .build();
    let recorded = run_sweep_with(
        &plan,
        1,
        ExecOptions {
            record_traces: true,
            batch_lanes: 0,
            seed_blocks: 0,
        },
    );
    let per_rate = run_sweep_with(&plan, 1, options(1));
    assert_eq!(
        recorded.to_csv(),
        per_rate.to_csv(),
        "trace-recording sweeps must still match the streaming exports"
    );
}
