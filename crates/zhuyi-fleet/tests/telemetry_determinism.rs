//! Telemetry aggregate determinism: the `"deterministic"` section of a
//! sweep's merged snapshot is a function of the executed job set alone.
//! Shard counts (worker threads), scheduling order, and wall-clock noise
//! must all cancel out — every deterministic value is a commutative u64
//! sum, and shards merge in id order. This pins the contract the
//! distributed fold relies on: coordinator-side aggregates are
//! comparable across runs and across cluster shapes.

use std::sync::Arc;

use av_scenarios::catalog::ScenarioId;
use zhuyi_fleet::{run_sweep_with, ExecOptions, SweepPlan};

/// Scenarios with distinct actor mixes, plus jittered variants so seed
/// blocks hold real geometry diversity.
fn mixed_plan() -> SweepPlan {
    SweepPlan::builder()
        .scenarios([
            ScenarioId::CutOut,
            ScenarioId::VehicleFollowing,
            ScenarioId::FrontRightActivity1,
        ])
        .jittered_variants(2)
        .probe(4.0, true)
        .min_safe_fpr(vec![1, 4, 30])
        .build()
}

/// Runs the plan under a fresh registry and returns the deterministic
/// section of the merged snapshot.
fn deterministic_section(plan: &SweepPlan, workers: usize, options: ExecOptions) -> String {
    let registry = Arc::new(zhuyi_telemetry::Registry::new());
    let _guard = zhuyi_telemetry::install(&registry);
    run_sweep_with(plan, workers, options);
    registry.snapshot().deterministic_json()
}

#[test]
fn deterministic_section_is_shard_count_independent_and_repeatable() {
    let plan = mixed_plan();
    let options = ExecOptions::default();

    let reference = deterministic_section(&plan, 1, options);
    assert_ne!(
        reference,
        Arc::new(zhuyi_telemetry::Registry::new())
            .snapshot()
            .deterministic_json(),
        "the sweep recorded nothing; the comparison below is vacuous"
    );

    for workers in [2usize, 4] {
        assert_eq!(
            deterministic_section(&plan, workers, options),
            reference,
            "deterministic telemetry diverged at {workers} workers"
        );
    }
    assert_eq!(
        deterministic_section(&plan, 2, options),
        deterministic_section(&plan, 2, options),
        "deterministic telemetry diverged between identical runs"
    );
}

#[test]
fn deterministic_section_is_execution_path_independent() {
    // The per-seed, rate-batched, and seed-batched paths walk different
    // loops but execute the same job set; phase-tick totals differ by
    // construction (batched loops lap once per shared tick), so this
    // pin is narrower: counters that count *jobs* must agree. Certificate
    // declines legitimately differ (only batched paths attempt
    // certificates), which is exactly why they are interesting to record.
    let plan = mixed_plan();
    let per_job = |options: ExecOptions| {
        let registry = Arc::new(zhuyi_telemetry::Registry::new());
        let _guard = zhuyi_telemetry::install(&registry);
        run_sweep_with(&plan, 2, options);
        let snap = registry.snapshot();
        (
            snap.counters[zhuyi_telemetry::Counter::JobsExecuted.index()],
            snap.jobs.iter().map(|&(id, _)| id).collect::<Vec<u64>>(),
        )
    };

    let reference = per_job(ExecOptions {
        batch_lanes: 1,
        ..ExecOptions::default()
    });
    assert_eq!(reference.0, plan.len() as u64);
    assert_eq!(
        per_job(ExecOptions::default()),
        reference,
        "rate-batched path recorded a different job set"
    );
    assert_eq!(
        per_job(ExecOptions {
            seed_blocks: 64,
            ..ExecOptions::default()
        }),
        reference,
        "seed-batched path recorded a different job set"
    );
}
