//! Plan expansion: scenario corpus × jitter seeds × job kinds → a flat,
//! id-ordered job list.
//!
//! The nine Table-1 scenarios multiply into hundreds of jittered variants
//! through [`av_scenarios::jitter`]: seed 0 is the nominal geometry and
//! every other seed perturbs speeds, gaps and trigger positions slightly
//! (the paper's ten-repeats methodology, §4.2). The builder expands the
//! cross product in a fixed nesting order — scenario, then seed, then job
//! kind — and numbers jobs densely from 0, so a plan is a pure function of
//! its inputs and two identical plans produce identical sweeps.

use crate::job::{JobId, JobKind, JobSpec, PredictorChoice, RateSpec, SweepJob};
use av_scenarios::catalog::ScenarioId;
use zhuyi_registry::ScenarioSource;

/// A fully expanded sweep: the unit handed to [`crate::run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    jobs: Vec<SweepJob>,
}

impl SweepPlan {
    /// Starts building a plan (all nine scenarios, nominal seed only, no
    /// job kinds yet).
    pub fn builder() -> SweepPlanBuilder {
        SweepPlanBuilder::default()
    }

    /// Reassembles a plan from an explicit job list — the deserialization
    /// path for plans that crossed a process boundary (the sweep daemon's
    /// client submissions and journal replays). The job list must uphold
    /// the builder's invariant of strictly ascending ids; it is asserted
    /// here so a corrupted source cannot smuggle an out-of-order plan
    /// past the id-ordered merge.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is not strictly ascending by id.
    pub fn from_jobs(jobs: Vec<SweepJob>) -> Self {
        assert!(
            jobs.windows(2).all(|w| w[0].id.0 < w[1].id.0),
            "plan jobs must be strictly ascending by id"
        );
        Self { jobs }
    }

    /// The jobs, ascending by id.
    pub fn jobs(&self) -> &[SweepJob] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Builder for [`SweepPlan`]; see the module docs for expansion order.
#[derive(Debug, Clone)]
pub struct SweepPlanBuilder {
    scenarios: Vec<ScenarioSource>,
    seeds: Vec<u64>,
    kinds: Vec<JobKind>,
}

impl Default for SweepPlanBuilder {
    fn default() -> Self {
        Self {
            scenarios: ScenarioId::ALL.iter().map(|&id| id.into()).collect(),
            seeds: vec![0],
            kinds: Vec::new(),
        }
    }
}

impl SweepPlanBuilder {
    /// Restricts the sweep to the given catalog scenarios (in the given
    /// order).
    pub fn scenarios(self, ids: impl IntoIterator<Item = ScenarioId>) -> Self {
        self.sources(ids.into_iter().map(ScenarioSource::from))
    }

    /// Restricts the sweep to the given scenario sources (in the given
    /// order) — catalog entries and registry definitions mix freely.
    pub fn sources(mut self, sources: impl IntoIterator<Item = ScenarioSource>) -> Self {
        self.scenarios = sources.into_iter().collect();
        self
    }

    /// Uses exactly these jitter seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Uses the nominal scenario plus `n - 1` jittered variants (seeds
    /// `0..n`) — the fleet way of saying "run each scenario `n` times".
    pub fn jittered_variants(self, n: u64) -> Self {
        self.seeds(0..n)
    }

    /// Adds a collision probe at a uniform rate.
    pub fn probe(mut self, fpr: f64, keep_trace: bool) -> Self {
        self.kinds.push(JobKind::Probe {
            plan: RateSpec::Uniform(fpr),
            keep_trace,
        });
        self
    }

    /// Adds one collision probe per rate (no traces kept) — the old
    /// brute-force rate grid, when you really want every point.
    pub fn probe_rates(mut self, rates: &[f64]) -> Self {
        for &fpr in rates {
            self.kinds.push(JobKind::Probe {
                plan: RateSpec::Uniform(fpr),
                keep_trace: false,
            });
        }
        self
    }

    /// Adds a collision probe at an explicit per-camera plan.
    pub fn probe_per_camera(mut self, rates: Vec<f64>, keep_trace: bool) -> Self {
        self.kinds.push(JobKind::Probe {
            plan: RateSpec::PerCamera(rates),
            keep_trace,
        });
        self
    }

    /// Adds one per-camera collision probe per plan — the heterogeneous
    /// rate-grid experiment (`fleet_sweep --mode percam` feeds the
    /// catalog's `PER_CAMERA_PLANS` presets through this).
    pub fn probe_per_camera_plans(
        mut self,
        plans: impl IntoIterator<Item = Vec<f64>>,
        keep_trace: bool,
    ) -> Self {
        for rates in plans {
            self = self.probe_per_camera(rates, keep_trace);
        }
        self
    }

    /// Adds a minimum-safe-FPR binary search over `candidates`
    /// (ascending).
    pub fn min_safe_fpr(mut self, candidates: Vec<u32>) -> Self {
        self.kinds.push(JobKind::MinSafeFpr { candidates });
        self
    }

    /// Adds a Zhuyi trace analysis at a uniform rate.
    pub fn analyze(mut self, fpr: f64, predictor: PredictorChoice, stride: usize) -> Self {
        self.kinds.push(JobKind::Analyze {
            plan: RateSpec::Uniform(fpr),
            predictor,
            stride,
        });
        self
    }

    /// Expands the cross product into an id-ordered plan.
    ///
    /// # Panics
    ///
    /// Panics if no job kinds were added (an empty sweep is always a
    /// caller bug) or if a rate plan contains a non-positive or non-finite
    /// rate (validated here so workers never trip on it mid-sweep).
    pub fn build(self) -> SweepPlan {
        assert!(
            !self.kinds.is_empty(),
            "sweep plan has no job kinds; add probe()/min_safe_fpr()/analyze()"
        );
        for kind in &self.kinds {
            validate_kind(kind);
        }
        let mut jobs =
            Vec::with_capacity(self.scenarios.len() * self.seeds.len() * self.kinds.len());
        for scenario in &self.scenarios {
            for &seed in &self.seeds {
                for kind in &self.kinds {
                    jobs.push(SweepJob {
                        id: JobId(jobs.len() as u64),
                        spec: JobSpec {
                            scenario: scenario.clone(),
                            seed,
                            kind: kind.clone(),
                        },
                    });
                }
            }
        }
        SweepPlan { jobs }
    }
}

fn validate_kind(kind: &JobKind) {
    let check_rate = |r: f64| {
        assert!(
            r.is_finite() && r > 0.0,
            "rate plans must be positive and finite, got {r}"
        );
    };
    match kind {
        JobKind::Probe { plan, .. } | JobKind::Analyze { plan, .. } => match plan {
            RateSpec::Uniform(r) => check_rate(*r),
            RateSpec::PerCamera(rs) => {
                let rig_cameras = av_perception::rig::CameraRig::drive_av().len();
                assert!(
                    rs.len() == rig_cameras,
                    "per-camera plan has {} rates but the rig has {rig_cameras} cameras",
                    rs.len()
                );
                rs.iter().copied().for_each(check_rate);
            }
        },
        JobKind::MinSafeFpr { candidates } => {
            assert!(!candidates.is_empty(), "empty MSF candidate grid");
            assert!(
                candidates.windows(2).all(|w| w[0] < w[1]),
                "MSF candidate grid must be strictly ascending"
            );
            assert!(candidates[0] > 0, "MSF candidates must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_dense_and_ordered() {
        let plan = SweepPlan::builder()
            .scenarios([ScenarioId::CutOut, ScenarioId::CutIn])
            .jittered_variants(3)
            .probe(30.0, false)
            .min_safe_fpr(vec![1, 4, 30])
            .build();
        // 2 scenarios x 3 seeds x 2 kinds.
        assert_eq!(plan.len(), 12);
        for (i, job) in plan.jobs().iter().enumerate() {
            assert_eq!(job.id.0, i as u64, "ids must be dense and ordered");
        }
        // Nesting order: scenario outermost, kind innermost.
        assert_eq!(plan.jobs()[0].spec.scenario, ScenarioId::CutOut.into());
        assert_eq!(plan.jobs()[0].spec.seed, 0);
        assert_eq!(plan.jobs()[1].spec.seed, 0);
        assert_eq!(plan.jobs()[2].spec.seed, 1);
        assert_eq!(plan.jobs()[6].spec.scenario, ScenarioId::CutIn.into());
    }

    #[test]
    fn per_camera_plan_sets_expand_one_probe_each() {
        let plans = vec![
            vec![30.0, 15.0, 4.0, 4.0, 2.0],
            vec![6.0, 4.0, 2.0, 2.0, 1.0],
        ];
        let plan = SweepPlan::builder()
            .scenarios([ScenarioId::CutOut])
            .jittered_variants(3)
            .probe_per_camera_plans(plans.clone(), false)
            .build();
        // 1 scenario x 3 seeds x 2 per-camera plans.
        assert_eq!(plan.len(), 6);
        let kinds: Vec<&JobKind> = plan.jobs().iter().map(|j| &j.spec.kind).collect();
        assert!(kinds.iter().all(|k| matches!(
            k,
            JobKind::Probe {
                plan: RateSpec::PerCamera(_),
                ..
            }
        )));
        let JobKind::Probe {
            plan: RateSpec::PerCamera(first),
            ..
        } = kinds[0]
        else {
            unreachable!("checked above");
        };
        assert_eq!(first, &plans[0]);
    }

    #[test]
    fn identical_builders_build_identical_plans() {
        let mk = || {
            SweepPlan::builder()
                .jittered_variants(5)
                .min_safe_fpr(vec![1, 2, 4, 6, 10, 30])
                .build()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "no job kinds")]
    fn empty_plans_are_rejected() {
        let _ = SweepPlan::builder().build();
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_rates_are_rejected_at_build_time() {
        let _ = SweepPlan::builder().probe(0.0, false).build();
    }

    #[test]
    #[should_panic(expected = "cameras")]
    fn per_camera_arity_is_checked_against_the_rig() {
        // The drive_av rig has 5 cameras; a 2-rate plan must fail at
        // build time, not panic mid-sweep inside a worker.
        let _ = SweepPlan::builder()
            .probe_per_camera(vec![1.0, 2.0], false)
            .build();
    }
}
