//! The fleet job model: one [`SweepJob`] is one independently executable
//! unit of sweep work.
//!
//! A job is the cross product the paper's pre-deployment workflow (§3.1)
//! iterates over — *scenario id × jitter seed × rate plan × predictor
//! choice* — plus the kind of question asked of that instance:
//!
//! - [`JobKind::Probe`]: run the scenario closed-loop at one rate plan and
//!   record whether the ego collided,
//! - [`JobKind::MinSafeFpr`]: binary-search the smallest safe uniform rate
//!   (replacing the old brute-force rate grids),
//! - [`JobKind::Analyze`]: run at a rate plan and push the recorded trace
//!   through the Zhuyi estimator with a chosen trajectory predictor.
//!
//! Jobs carry a dense [`JobId`] assigned at plan-expansion time; results
//! are merged back in id order, which is what makes a fleet sweep
//! deterministic regardless of worker-thread interleaving.

use av_core::units::Fpr;
use av_perception::system::RatePlan;
use serde::{Deserialize, Serialize};
use std::fmt;
use zhuyi_registry::ScenarioSource;

/// Dense, plan-assigned identifier of a [`SweepJob`].
///
/// Ids number jobs in plan-expansion order; the result merge sorts by id,
/// so two sweeps over the same plan produce identically ordered results
/// whatever the thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A camera rate plan in plain-`f64` form, convertible to
/// [`av_perception::system::RatePlan`].
///
/// Kept separate from `RatePlan` so jobs stay cheap to clone, hash and
/// print, and so plan expansion does not depend on perception-system
/// validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateSpec {
    /// Every camera processes frames at the same rate.
    Uniform(f64),
    /// One rate per camera, in rig order.
    PerCamera(Vec<f64>),
}

impl RateSpec {
    /// The equivalent perception-system rate plan.
    pub fn to_rate_plan(&self) -> RatePlan {
        match self {
            RateSpec::Uniform(r) => RatePlan::Uniform(Fpr(*r)),
            RateSpec::PerCamera(rs) => RatePlan::PerCamera(rs.iter().map(|r| Fpr(*r)).collect()),
        }
    }

    /// The slowest camera rate in the plan (defines the per-frame latency
    /// `l0` the Zhuyi analysis starts from).
    pub fn min_rate(&self) -> f64 {
        match self {
            RateSpec::Uniform(r) => *r,
            RateSpec::PerCamera(rs) => rs.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

impl fmt::Display for RateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateSpec::Uniform(r) => write!(f, "{r}"),
            RateSpec::PerCamera(rs) => {
                let cells: Vec<String> = rs.iter().map(|r| r.to_string()).collect();
                write!(f, "[{}]", cells.join("|"))
            }
        }
    }
}

/// Which trajectory predictor an [`JobKind::Analyze`] job feeds the
/// estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorChoice {
    /// Hindsight oracle futures taken from the recorded trace itself (the
    /// paper's pre-deployment §3.1 setting).
    Oracle,
    /// Constant-velocity kinematic rollout per actor.
    ConstantVelocity,
    /// Constant-acceleration kinematic rollout per actor.
    ConstantAcceleration,
}

impl PredictorChoice {
    /// Short stable name used in CSV/JSON exports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            PredictorChoice::Oracle => "oracle",
            PredictorChoice::ConstantVelocity => "cv",
            PredictorChoice::ConstantAcceleration => "ca",
        }
    }
}

impl fmt::Display for PredictorChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What question a job asks of its scenario instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobKind {
    /// Run closed-loop at `plan` and record the collision outcome.
    Probe {
        /// The camera rates driven.
        plan: RateSpec,
        /// Keep the full trace (as CSV via [`av_sim::io`]) in the result.
        /// Costs memory; intended for export and byte-exact comparisons.
        keep_trace: bool,
    },
    /// Binary-search the minimum safe uniform rate over `candidates`
    /// (ascending). See [`crate::search::min_safe_fpr`].
    MinSafeFpr {
        /// Ascending candidate rates, e.g. Table 1's `[1..10, 15, 30]`.
        candidates: Vec<u32>,
    },
    /// Run at `plan`, then estimate the required per-camera rates over
    /// the recorded trace with `predictor`.
    Analyze {
        /// The camera rates driven.
        plan: RateSpec,
        /// Trajectory source for the estimator.
        predictor: PredictorChoice,
        /// Analyze every `stride`-th scene (the sim ticks at 100 Hz;
        /// stride 20 analyzes at 5 Hz).
        stride: usize,
    },
}

impl JobKind {
    /// Short stable name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Probe { .. } => "probe",
            JobKind::MinSafeFpr { .. } => "msf",
            JobKind::Analyze { .. } => "analyze",
        }
    }
}

/// Everything needed to execute one unit of sweep work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Which scenario: a Table-1 catalog entry or a registry definition.
    pub scenario: ScenarioSource,
    /// Jitter seed (0 = nominal geometry).
    pub seed: u64,
    /// The question asked.
    pub kind: JobKind,
}

/// A scheduled unit of sweep work: a [`JobSpec`] plus its merge id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepJob {
    /// Dense id assigned in plan-expansion order.
    pub id: JobId,
    /// The work itself.
    pub spec: JobSpec,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_spec_round_trips_to_rate_plan() {
        let uniform = RateSpec::Uniform(10.0);
        assert!(matches!(uniform.to_rate_plan(), RatePlan::Uniform(f) if f.value() == 10.0));
        assert_eq!(uniform.min_rate(), 10.0);

        let per = RateSpec::PerCamera(vec![30.0, 2.0, 15.0]);
        assert_eq!(per.min_rate(), 2.0);
        assert!(matches!(per.to_rate_plan(), RatePlan::PerCamera(v) if v.len() == 3));
    }

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(JobId(7).to_string(), "job7");
        assert_eq!(RateSpec::Uniform(6.0).to_string(), "6");
        assert_eq!(RateSpec::PerCamera(vec![1.0, 2.0]).to_string(), "[1|2]");
        assert_eq!(PredictorChoice::ConstantVelocity.to_string(), "cv");
        assert_eq!(
            JobKind::MinSafeFpr {
                candidates: vec![1, 30]
            }
            .name(),
            "msf"
        );
    }
}
