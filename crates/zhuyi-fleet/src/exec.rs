//! Job execution: turning one [`JobSpec`] into one [`JobOutcome`].
//!
//! Execution is a pure function of the spec — scenarios are rebuilt from
//! their (source, seed) pair, the simulator is deterministic, and the Zhuyi
//! estimator is deterministic — which is the property the worker pool's
//! deterministic merge relies on.
//!
//! By default execution is *metrics-only* wherever the outcome allows it:
//! collision probes and minimum-safe-FPR searches stream each run through
//! an [`av_sim::observer::MetricsObserver`] and never store a scene. Full
//! traces are recorded only for jobs that actually export them (probes
//! with `keep_trace`) or analyze them (Zhuyi trace analysis) — or for
//! every job when [`ExecOptions::record_traces`] forces the classic path
//! (the `fleet_sweep --record-traces` flag, and the baseline that the
//! `perf_baseline` benchmark measures the streaming path against).

use crate::job::{JobKind, JobSpec, PredictorChoice};
use crate::search::min_safe_fpr_with;
use crate::store::{AnalysisOutcome, JobOutcome, ProbeOutcome};
use av_core::units::Seconds;
use av_perception::rig::CameraRig;
use av_prediction::kinematic::{ConstantAcceleration, ConstantVelocity};
use av_prediction::predictor::TrajectoryPredictor;
use av_scenarios::catalog::Scenario;
use av_sim::io::trace_to_csv;
use av_sim::observer::{MetricsObserver, RunSummary};
use av_sim::trace::Trace;
use zhuyi::pipeline::{analyze_trace, PipelineConfig};
use zhuyi::{TolerableLatencyEstimator, ZhuyiConfig};
use zhuyi_runtime::online::{OnlineConfig, OnlineEstimator};

/// Execution-wide options, orthogonal to the per-job [`JobSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// Force the classic full-trace path even for jobs whose outcome only
    /// needs scalars. Costs memory and time; produces identical results
    /// (pinned by the fleet determinism tests). Trace-recording probes
    /// always use the per-rate path, whatever `batch_lanes` says.
    pub record_traces: bool,
    /// How many candidate-rate lanes a minimum-safe-FPR search runs per
    /// lockstep pass (see [`crate::search::min_safe_fpr_batched`]):
    /// `0` (the default) batches the full grid in one pass, `1` selects
    /// the per-rate reference search, and `N >= 2` batches `N` lanes at
    /// a time. Every setting produces byte-identical exports.
    pub batch_lanes: usize,
    /// How many minimum-safe-FPR jobs a worker advances through **one
    /// seed-batched lockstep loop** (see
    /// [`crate::search::min_safe_fpr_seed_batched`]): `0` or `1` keeps
    /// the one-job-at-a-time granularity, `N >= 2` groups up to `N`
    /// consecutive MSF jobs — each with its own jittered geometry — into
    /// one work item. Exports are byte-identical at every setting; what
    /// changes is scheduling granularity and the lockstep win. Ignored
    /// (per-job granularity) when `record_traces` forces the classic
    /// path or `batch_lanes == 1` selects the per-rate reference search.
    pub seed_blocks: usize,
}

/// Executes one job to completion with default options (metrics-only
/// wherever possible).
///
/// # Panics
///
/// Panics if the job's rate plan is rejected by the perception system
/// (non-positive or non-finite rates, wrong per-camera arity) — plan
/// validation belongs at plan-building time, not in the fleet hot loop.
pub fn execute(spec: &JobSpec) -> JobOutcome {
    execute_with(spec, ExecOptions::default())
}

/// Executes one job to completion under explicit [`ExecOptions`].
///
/// # Panics
///
/// See [`execute`].
pub fn execute_with(spec: &JobSpec, options: ExecOptions) -> JobOutcome {
    let scenario = spec.scenario.build(spec.seed);
    match &spec.kind {
        JobKind::Probe { plan, keep_trace } => {
            if *keep_trace || options.record_traces {
                let trace = run(&scenario, plan);
                JobOutcome::Probe(probe_outcome(&trace, *keep_trace))
            } else {
                let mut metrics = MetricsObserver::new();
                scenario
                    .run_with(plan.to_rate_plan(), &mut metrics)
                    .expect("fleet plans are validated at build time");
                JobOutcome::Probe(probe_from_summary(&metrics.summary()))
            }
        }
        JobKind::MinSafeFpr { candidates } => {
            // The batched grid cannot record per-candidate traces, so
            // `record_traces` always routes through the per-rate search.
            let search = if options.record_traces || options.batch_lanes == 1 {
                min_safe_fpr_with(&scenario, candidates, options.record_traces)
            } else {
                crate::search::min_safe_fpr_batched(&scenario, candidates, options.batch_lanes)
            };
            JobOutcome::MinSafeFpr(search)
        }
        JobKind::Analyze {
            plan,
            predictor,
            stride,
        } => {
            let trace = run(&scenario, plan);
            JobOutcome::Analysis(analyze(
                &scenario,
                &trace,
                plan.min_rate(),
                *predictor,
                *stride,
            ))
        }
    }
}

/// Executes a **seed block** — several [`JobKind::MinSafeFpr`] jobs, one
/// per jittered scenario instance — through one seed-batched lockstep
/// loop ([`crate::search::min_safe_fpr_seed_batched`]), returning one
/// outcome per spec in input order. Each outcome is byte-identical to
/// `execute_with(spec, options)` for that spec alone; the block is a
/// wall-clock and scheduling-granularity optimization, never a semantic
/// one.
///
/// # Panics
///
/// Panics if any spec is not a `MinSafeFpr` job or the specs disagree on
/// their candidate grids (the grouping layers — [`crate::run_sweep_with`]
/// and the distributed worker — only form blocks that satisfy both).
pub fn execute_seed_block(specs: &[JobSpec], _options: ExecOptions) -> Vec<JobOutcome> {
    let candidates = match specs {
        [] => return Vec::new(),
        [first, ..] => match &first.kind {
            JobKind::MinSafeFpr { candidates } => candidates,
            other => panic!("seed block with non-MSF job kind {:?}", other.name()),
        },
    };
    let scenarios: Vec<Scenario> = specs
        .iter()
        .map(|spec| {
            match &spec.kind {
                JobKind::MinSafeFpr { candidates: c } if c == candidates => {}
                other => panic!("mixed seed block: {:?} vs leading MSF grid", other.name()),
            }
            spec.scenario.build(spec.seed)
        })
        .collect();
    crate::search::min_safe_fpr_seed_batched(&scenarios, candidates)
        .into_iter()
        .map(JobOutcome::MinSafeFpr)
        .collect()
}

fn run(scenario: &Scenario, plan: &crate::job::RateSpec) -> Trace {
    scenario
        .simulation(plan.to_rate_plan())
        .expect("fleet plans are validated at build time")
        .run()
}

fn probe_outcome(trace: &Trace, keep_trace: bool) -> ProbeOutcome {
    let collision = trace.collision();
    ProbeOutcome {
        collided: trace.collided(),
        collision_time: collision.map(|(t, _)| t),
        collision_actor: collision.map(|(_, a)| a),
        min_clearance: trace.min_clearance(),
        duration: trace.duration(),
        trace_csv: keep_trace.then(|| trace_to_csv(trace)),
    }
}

fn probe_from_summary(summary: &RunSummary) -> ProbeOutcome {
    ProbeOutcome {
        collided: summary.collided(),
        collision_time: summary.collision.map(|(t, _)| t),
        collision_actor: summary.collision.map(|(_, a)| a),
        min_clearance: summary.min_clearance,
        duration: summary.duration,
        trace_csv: None,
    }
}

fn analyze(
    scenario: &Scenario,
    trace: &Trace,
    min_rate: f64,
    predictor: PredictorChoice,
    stride: usize,
) -> AnalysisOutcome {
    if trace.collided() {
        // A collided run has no meaningful "required rate" — the paper
        // analyzes collision-free reference traces only.
        return AnalysisOutcome {
            collided: true,
            steps: 0,
            max_camera_fpr: None,
            constraint_evaluations: 0,
        };
    }
    let current_latency = Seconds(1.0 / min_rate.max(f64::MIN_POSITIVE));
    let rig = CameraRig::drive_av();
    let path = scenario.road.path();

    match predictor {
        PredictorChoice::Oracle => {
            let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())
                .expect("paper config is valid");
            let config = PipelineConfig {
                current_latency,
                stride,
                ..Default::default()
            };
            let analysis = analyze_trace(&trace.scenes, path, &rig, &estimator, &config);
            AnalysisOutcome {
                collided: false,
                steps: analysis.steps.len(),
                max_camera_fpr: analysis.max_camera_fpr().map(|f| f.value()),
                constraint_evaluations: analysis.total_constraint_evaluations(),
            }
        }
        PredictorChoice::ConstantVelocity => analyze_online(
            trace,
            path,
            &rig,
            &ConstantVelocity,
            current_latency,
            stride,
        ),
        PredictorChoice::ConstantAcceleration => analyze_online(
            trace,
            path,
            &rig,
            &ConstantAcceleration,
            current_latency,
            stride,
        ),
    }
}

fn analyze_online(
    trace: &Trace,
    path: &av_core::path::Path,
    rig: &CameraRig,
    predictor: &dyn TrajectoryPredictor,
    current_latency: Seconds,
    stride: usize,
) -> AnalysisOutcome {
    let estimator =
        OnlineEstimator::new(OnlineConfig::default()).expect("default online config is valid");
    let mut steps = 0usize;
    let mut max_fpr: Option<f64> = None;
    let mut evaluations = 0u64;
    for scene in trace.scenes.iter().step_by(stride.max(1)) {
        let estimates = estimator.estimate(scene, path, rig, predictor, current_latency);
        steps += 1;
        evaluations += estimates
            .actors
            .iter()
            .map(|a| a.stats.constraint_evaluations)
            .sum::<u64>();
        for camera in &estimates.cameras {
            let fpr = camera.fpr().value();
            if fpr.is_finite() {
                max_fpr = Some(max_fpr.map_or(fpr, |m: f64| m.max(fpr)));
            }
        }
    }
    AnalysisOutcome {
        collided: false,
        steps,
        max_camera_fpr: max_fpr,
        constraint_evaluations: evaluations,
    }
}
