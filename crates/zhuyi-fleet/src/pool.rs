//! A sharded `std::thread` worker pool with a deterministic result merge.
//!
//! Work items are dealt round-robin into one queue shard per worker; each
//! worker drains its own shard front-to-back, then steals from the *back*
//! of other shards (classic work-stealing shape, minus the lock-free
//! deque: a `Mutex<VecDeque>` per shard is plenty at scenario-simulation
//! granularity, where one item costs milliseconds to seconds).
//!
//! Every item carries its original index, and the merge sorts finished
//! results by that index — so as long as the worker function is a pure
//! function of the item, the output of [`run_indexed`] is byte-identical
//! whatever the worker count or interleaving. That property is what the
//! fleet determinism tests pin down.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Runs `work` over every item on `workers` threads and returns the
/// outputs in input order.
///
/// `workers` is clamped to `1..=items.len()` (an empty input returns an
/// empty output without spawning). Panics in `work` propagate.
pub fn run_indexed<I, O, F>(items: Vec<I>, workers: usize, work: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let total = items.len();
    let workers = workers.clamp(1, total);

    // Deal items round-robin into one shard per worker, remembering each
    // item's original index for the merge.
    let mut shards: Vec<VecDeque<(usize, I)>> = (0..workers)
        .map(|_| VecDeque::with_capacity(total.div_ceil(workers)))
        .collect();
    for (index, item) in items.into_iter().enumerate() {
        shards[index % workers].push_back((index, item));
    }
    let shards: Vec<Mutex<VecDeque<(usize, I)>>> = shards.into_iter().map(Mutex::new).collect();

    // Telemetry: when the caller has a registry installed, each worker
    // gets its own private shard registry (lock-free recording — every
    // slot is thread-local in practice) and the shards are absorbed into
    // the caller's registry in worker-id order after the scope joins, so
    // the merged counts are independent of scheduling. With no registry
    // installed this is all `None` and the pool does no telemetry work.
    let parent = zhuyi_telemetry::current();
    let shard_regs: Option<Vec<Arc<zhuyi_telemetry::Registry>>> = parent.as_ref().map(|_| {
        (0..workers)
            .map(|_| Arc::new(zhuyi_telemetry::Registry::new()))
            .collect()
    });

    let mut merged: Vec<(usize, O)> = Vec::with_capacity(total);
    let collected = Mutex::new(&mut merged);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let shards = &shards;
            let collected = &collected;
            let work = &work;
            let shard_reg = shard_regs.as_ref().map(|regs| Arc::clone(&regs[me]));
            scope.spawn(move || {
                // Thread-locals don't cross threads: re-install this
                // worker's shard registry for the closure's duration.
                let _guard = shard_reg.as_ref().map(zhuyi_telemetry::install);
                let mut finished: Vec<(usize, O)> = Vec::new();
                loop {
                    // Own shard first (front), then steal (back).
                    let next = match pop_own(&shards[me]) {
                        Some(got) => {
                            if let Some(reg) = &shard_reg {
                                let depth = shards[me].lock().expect("queue shard poisoned").len();
                                reg.record_queue_depth(depth as u64);
                            }
                            Some(got)
                        }
                        None => {
                            let stolen = (1..shards.len())
                                .map(|step| &shards[(me + step) % shards.len()])
                                .find_map(steal);
                            if stolen.is_some() {
                                if let Some(reg) = &shard_reg {
                                    reg.inc(zhuyi_telemetry::Counter::Steals);
                                }
                            }
                            stolen
                        }
                    };
                    let Some((index, item)) = next else { break };
                    finished.push((index, work(&item)));
                }
                collected
                    .lock()
                    .expect("result sink poisoned")
                    .extend(finished);
            });
        }
    });

    if let (Some(parent), Some(regs)) = (parent, shard_regs) {
        for reg in &regs {
            parent.absorb(&reg.snapshot());
        }
    }

    assert_eq!(merged.len(), total, "worker pool lost results");
    merged.sort_by_key(|(index, _)| *index);
    merged.into_iter().map(|(_, output)| output).collect()
}

fn pop_own<T>(shard: &Mutex<VecDeque<T>>) -> Option<T> {
    shard.lock().expect("queue shard poisoned").pop_front()
}

fn steal<T>(shard: &Mutex<VecDeque<T>>) -> Option<T> {
    shard.lock().expect("queue shard poisoned").pop_back()
}

/// The worker count used when the caller does not pin one: the machine's
/// available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64, 1000] {
            let out = run_indexed(items.clone(), workers, |x| x * x);
            assert_eq!(out, expected, "order broke at {workers} workers");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_indexed((0..100).collect::<Vec<i64>>(), 7, |x| {
            hits.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<i32> = run_indexed(Vec::<i32>::new(), 8, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_stolen() {
        // Front-load shard 0 with slow items; the pool must still finish
        // and keep order. (Timing is not asserted — only correctness.)
        let items: Vec<u64> = (0..40).collect();
        let out = run_indexed(items, 4, |x| {
            if x % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            *x
        });
        assert_eq!(out, (0..40).collect::<Vec<u64>>());
    }
}
