//! Shared flag parsing for the fleet binaries (`fleet_sweep`,
//! `perf_baseline`), so the CLIs cannot drift apart on how a scenario
//! list, a rate grid, or a per-camera plan selection is interpreted.

use av_scenarios::catalog::{PerCameraPlan, ScenarioId, PER_CAMERA_PLANS};

/// Parses a `--scenarios` value: `all`, or comma-separated Table-1
/// indexes (`0 = Cut-out ... 8 = Front & right 3`).
///
/// # Errors
///
/// Returns a human-readable message for non-numeric or out-of-range
/// indexes.
pub fn parse_scenarios(spec: &str) -> Result<Vec<ScenarioId>, String> {
    if spec == "all" {
        return Ok(ScenarioId::ALL.to_vec());
    }
    spec.split(',')
        .map(|s| {
            let index: usize = s
                .trim()
                .parse()
                .map_err(|_| format!("bad scenario index {s:?}"))?;
            ScenarioId::ALL
                .get(index)
                .copied()
                .ok_or_else(|| format!("scenario index {index} out of 0..9"))
        })
        .collect()
}

/// Parses a `--rates` value: comma-separated integer rates, treated as a
/// set (sorted ascending, deduplicated) and rejected when any rate is 0.
///
/// # Errors
///
/// Returns a human-readable message for non-numeric or zero rates.
pub fn parse_rates(spec: &str) -> Result<Vec<u32>, String> {
    let mut rates: Vec<u32> = spec
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad rate {s:?}")))
        .collect::<Result<_, String>>()?;
    rates.sort_unstable();
    rates.dedup();
    if rates.first() == Some(&0) {
        return Err("rates must be >= 1".to_string());
    }
    Ok(rates)
}

/// Parses a `--plans` value: `all`, or comma-separated indexes into the
/// catalog's [`PER_CAMERA_PLANS`] presets (in catalog order), or preset
/// names (`front-heavy`, ...). Duplicates are kept — probing one plan
/// twice is a caller decision, not a parse error.
///
/// # Errors
///
/// Returns a human-readable message for unknown names or out-of-range
/// indexes.
pub fn parse_per_camera_plans(spec: &str) -> Result<Vec<PerCameraPlan>, String> {
    if spec == "all" {
        return Ok(PER_CAMERA_PLANS.to_vec());
    }
    spec.split(',')
        .map(|s| {
            let s = s.trim();
            if let Ok(index) = s.parse::<usize>() {
                return PER_CAMERA_PLANS.get(index).copied().ok_or_else(|| {
                    format!(
                        "per-camera plan index {index} out of 0..{}",
                        PER_CAMERA_PLANS.len()
                    )
                });
            }
            PER_CAMERA_PLANS
                .iter()
                .find(|p| p.name == s)
                .copied()
                .ok_or_else(|| {
                    let names: Vec<&str> = PER_CAMERA_PLANS.iter().map(|p| p.name).collect();
                    format!(
                        "unknown per-camera plan {s:?} (known: {})",
                        names.join(", ")
                    )
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_all_and_indexes() {
        assert_eq!(parse_scenarios("all").expect("all"), ScenarioId::ALL);
        assert_eq!(
            parse_scenarios("0, 5").expect("valid"),
            vec![ScenarioId::CutOut, ScenarioId::VehicleFollowing]
        );
        assert!(parse_scenarios("9").is_err());
        assert!(parse_scenarios("x").is_err());
    }

    #[test]
    fn rates_are_a_sorted_set() {
        assert_eq!(parse_rates("30,1,4,4").expect("valid"), vec![1, 4, 30]);
        assert!(parse_rates("0,1").is_err());
        assert!(parse_rates("1,two").is_err());
    }

    #[test]
    fn per_camera_plans_by_index_name_or_all() {
        assert_eq!(
            parse_per_camera_plans("all").expect("all"),
            PER_CAMERA_PLANS.to_vec()
        );
        let picked = parse_per_camera_plans("2, front-heavy").expect("valid");
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], PER_CAMERA_PLANS[2]);
        assert_eq!(picked[1].name, "front-heavy");
        assert!(parse_per_camera_plans("9").is_err());
        assert!(parse_per_camera_plans("sideways").is_err());
    }
}
