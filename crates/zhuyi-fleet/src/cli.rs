//! Shared flag parsing for the fleet binaries (`fleet_sweep`,
//! `perf_baseline`), so the two CLIs cannot drift apart on how a
//! scenario list or a rate grid is interpreted.

use av_scenarios::catalog::ScenarioId;

/// Parses a `--scenarios` value: `all`, or comma-separated Table-1
/// indexes (`0 = Cut-out ... 8 = Front & right 3`).
///
/// # Errors
///
/// Returns a human-readable message for non-numeric or out-of-range
/// indexes.
pub fn parse_scenarios(spec: &str) -> Result<Vec<ScenarioId>, String> {
    if spec == "all" {
        return Ok(ScenarioId::ALL.to_vec());
    }
    spec.split(',')
        .map(|s| {
            let index: usize = s
                .trim()
                .parse()
                .map_err(|_| format!("bad scenario index {s:?}"))?;
            ScenarioId::ALL
                .get(index)
                .copied()
                .ok_or_else(|| format!("scenario index {index} out of 0..9"))
        })
        .collect()
}

/// Parses a `--rates` value: comma-separated integer rates, treated as a
/// set (sorted ascending, deduplicated) and rejected when any rate is 0.
///
/// # Errors
///
/// Returns a human-readable message for non-numeric or zero rates.
pub fn parse_rates(spec: &str) -> Result<Vec<u32>, String> {
    let mut rates: Vec<u32> = spec
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad rate {s:?}")))
        .collect::<Result<_, String>>()?;
    rates.sort_unstable();
    rates.dedup();
    if rates.first() == Some(&0) {
        return Err("rates must be >= 1".to_string());
    }
    Ok(rates)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_all_and_indexes() {
        assert_eq!(parse_scenarios("all").expect("all"), ScenarioId::ALL);
        assert_eq!(
            parse_scenarios("0, 5").expect("valid"),
            vec![ScenarioId::CutOut, ScenarioId::VehicleFollowing]
        );
        assert!(parse_scenarios("9").is_err());
        assert!(parse_scenarios("x").is_err());
    }

    #[test]
    fn rates_are_a_sorted_set() {
        assert_eq!(parse_rates("30,1,4,4").expect("valid"), vec![1, 4, 30]);
        assert!(parse_rates("0,1").is_err());
        assert!(parse_rates("1,two").is_err());
    }
}
