//! `fleet_sweep` — run a fleet-scale scenario sweep from the command line.
//!
//! The paper's pre-deployment workflow (§3.1) at corpus scale: expand the
//! nine Table-1 scenarios into jittered variants, fan the resulting jobs
//! across a worker pool, and aggregate/export the merged results.
//!
//! ```text
//! USAGE:
//!   fleet_sweep [--mode msf|probe|analyze] [--scenarios all|0,1,5]
//!               [--variants N] [--workers N] [--rates 1,2,...,30]
//!               [--fpr F] [--predictor oracle|cv|ca] [--stride N]
//!               [--csv NAME] [--json NAME] [--traces] [--record-traces]
//!               [--baseline] [--help]
//! ```
//!
//! Defaults reproduce Table 1 fleet-style: `--mode msf --scenarios all
//! --variants 10` over the paper's rate grid, on all available cores.
//! `--baseline` re-runs the same sweep single-threaded and prints the
//! speedup (on a multi-core machine; a 1-core box shows ~1x).

use av_scenarios::catalog::{ScenarioId, PAPER_RATE_GRID};
use std::process::ExitCode;
use std::time::Instant;
use zhuyi_fleet::{cli, pool, run_sweep_with, ExecOptions, PredictorChoice, SweepPlan};

#[derive(Debug)]
struct Args {
    mode: Mode,
    scenarios: Vec<ScenarioId>,
    variants: u64,
    workers: usize,
    rates: Vec<u32>,
    fpr: f64,
    predictor: PredictorChoice,
    stride: usize,
    csv: Option<String>,
    json: Option<String>,
    traces: bool,
    record_traces: bool,
    baseline: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Msf,
    Probe,
    Analyze,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            mode: Mode::Msf,
            scenarios: ScenarioId::ALL.to_vec(),
            variants: 10,
            workers: pool::default_workers(),
            rates: PAPER_RATE_GRID.to_vec(),
            fpr: 30.0,
            predictor: PredictorChoice::Oracle,
            stride: 20,
            csv: None,
            json: None,
            traces: false,
            record_traces: false,
            baseline: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut seen: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        seen.push(flag.clone());
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "msf" => Mode::Msf,
                    "probe" => Mode::Probe,
                    "analyze" => Mode::Analyze,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--scenarios" => args.scenarios = cli::parse_scenarios(&value("--scenarios")?)?,
            "--variants" => {
                args.variants = value("--variants")?
                    .parse()
                    .map_err(|_| "bad --variants".to_string())?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad --workers".to_string())?
            }
            "--rates" => args.rates = cli::parse_rates(&value("--rates")?)?,
            "--fpr" => {
                args.fpr = value("--fpr")?
                    .parse()
                    .map_err(|_| "bad --fpr".to_string())?
            }
            "--predictor" => {
                args.predictor = match value("--predictor")?.as_str() {
                    "oracle" => PredictorChoice::Oracle,
                    "cv" => PredictorChoice::ConstantVelocity,
                    "ca" => PredictorChoice::ConstantAcceleration,
                    other => return Err(format!("unknown predictor {other:?}")),
                }
            }
            "--stride" => {
                args.stride = value("--stride")?
                    .parse()
                    .map_err(|_| "bad --stride".to_string())?
            }
            "--csv" => args.csv = Some(value("--csv")?),
            "--json" => args.json = Some(value("--json")?),
            "--traces" => args.traces = true,
            "--record-traces" => args.record_traces = true,
            "--baseline" => args.baseline = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.workers == 0 {
        return Err("--workers must be >= 1".to_string());
    }
    if args.variants == 0 {
        return Err("--variants must be >= 1".to_string());
    }
    if !(args.fpr.is_finite() && args.fpr > 0.0) {
        return Err("--fpr must be positive and finite".to_string());
    }
    // Reject flags the selected mode would silently ignore — a dropped
    // `--rates` or `--fpr` quietly changes what safety question was asked.
    let irrelevant: &[&str] = match args.mode {
        Mode::Msf => &["--fpr", "--predictor", "--stride", "--traces"],
        Mode::Probe => &["--rates", "--predictor", "--stride"],
        // Analyze jobs always record (the estimator consumes the trace),
        // so --record-traces would be a silent no-op there.
        Mode::Analyze => &["--rates", "--traces", "--record-traces"],
    };
    let mode_name = match args.mode {
        Mode::Msf => "msf",
        Mode::Probe => "probe",
        Mode::Analyze => "analyze",
    };
    if let Some(flag) = seen.iter().find(|f| irrelevant.contains(&f.as_str())) {
        return Err(format!("{flag} does not apply to --mode {mode_name}"));
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "fleet_sweep — parallel fleet-scale scenario sweeps\n\n\
         USAGE:\n  fleet_sweep [--mode msf|probe|analyze] [--scenarios all|0,1,5]\n\
         \x20             [--variants N] [--workers N] [--rates 1,2,...,30]\n\
         \x20             [--fpr F] [--predictor oracle|cv|ca] [--stride N]\n\
         \x20             [--csv NAME] [--json NAME] [--traces] [--record-traces]\n\
         \x20             [--baseline]\n\n\
         MODES:\n\
         \x20 msf      binary-search each instance's minimum safe rate over --rates (default)\n\
         \x20 probe    run each instance closed-loop at --fpr and record collisions\n\
         \x20 analyze  run at --fpr, then Zhuyi-analyze the trace with --predictor\n\n\
         Scenario indexes follow Table-1 order (0 = Cut-out ... 8 = Front & right 3).\n\
         --csv/--json write into results/ via the bench harness; --traces keeps\n\
         probe traces and writes them as results/trace_*.csv.\n\
         Probes and msf searches run metrics-only (streaming, zero stored scenes);\n\
         --record-traces forces the classic full-trace path (identical results,\n\
         for debugging and baseline timing)."
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            usage();
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let mut builder = SweepPlan::builder()
        .scenarios(args.scenarios.iter().copied())
        .jittered_variants(args.variants);
    builder = match args.mode {
        Mode::Msf => builder.min_safe_fpr(args.rates.clone()),
        Mode::Probe => builder.probe(args.fpr, args.traces),
        Mode::Analyze => builder.analyze(args.fpr, args.predictor, args.stride),
    };
    let plan = builder.build();

    println!(
        "fleet_sweep: {} jobs ({} scenarios x {} variants), {} workers",
        plan.len(),
        args.scenarios.len(),
        args.variants,
        args.workers
    );

    let options = ExecOptions {
        record_traces: args.record_traces,
    };
    let start = Instant::now();
    let store = run_sweep_with(&plan, args.workers, options);
    let elapsed = start.elapsed();
    println!(
        "completed {} jobs in {:.2}s ({:.1} jobs/s)\n",
        store.len(),
        elapsed.as_secs_f64(),
        store.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    if args.baseline {
        let start = Instant::now();
        let sequential = run_sweep_with(&plan, 1, options);
        let baseline = start.elapsed();
        assert_eq!(
            sequential.to_csv(),
            store.to_csv(),
            "parallel and sequential sweeps must merge identically"
        );
        println!(
            "single-thread baseline: {:.2}s -> speedup {:.2}x on {} workers (identical output)\n",
            baseline.as_secs_f64(),
            baseline.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            args.workers
        );
    }

    println!("{}", store.summary_table().render());

    if let Some(name) = &args.csv {
        let path = zhuyi_bench::write_results(name, &store.to_csv());
        println!("wrote {}", path.display());
    }
    if let Some(name) = &args.json {
        let path = zhuyi_bench::write_results(name, &store.to_json());
        println!("wrote {}", path.display());
    }
    if args.traces {
        for (name, csv) in store.kept_traces() {
            let path = zhuyi_bench::write_results(&name, csv);
            println!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}
