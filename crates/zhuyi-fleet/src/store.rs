//! The fleet result store: merged job outcomes, percentile aggregation,
//! and CSV/JSON/trace export.
//!
//! Exports are *deterministic*: results are kept sorted by [`JobId`], all
//! derived tables iterate in that order, and no wall-clock data enters any
//! exported byte. Two sweeps of the same plan therefore export identical
//! bytes whatever the worker count — the property pinned down by the
//! `parallel == sequential` determinism tests.

use crate::job::{JobId, JobKind, SweepJob};
use crate::search::MsfSearch;
use av_core::state::ActorId;
use av_core::units::{Meters, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use zhuyi_bench::Table;

/// Outcome of a [`JobKind::Probe`] job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeOutcome {
    /// Whether the ego collided.
    pub collided: bool,
    /// When the collision happened, if any.
    pub collision_time: Option<Seconds>,
    /// Who the ego collided with, if anyone.
    pub collision_actor: Option<ActorId>,
    /// Smallest ego-to-actor clearance over the run.
    pub min_clearance: Option<Meters>,
    /// How long the run lasted (collisions end runs early).
    pub duration: Seconds,
    /// The full trace as [`av_sim::io`] CSV, when the job asked to keep it.
    pub trace_csv: Option<String>,
}

/// Outcome of a [`JobKind::Analyze`] job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisOutcome {
    /// Whether the reference run collided (in which case no estimate is
    /// produced).
    pub collided: bool,
    /// Scenes analyzed (after striding).
    pub steps: usize,
    /// The peak per-camera rate requirement over the whole trace.
    pub max_camera_fpr: Option<f64>,
    /// Total Eq.-1/2 constraint evaluations spent.
    pub constraint_evaluations: u64,
}

/// What a finished job produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Collision probe result.
    Probe(ProbeOutcome),
    /// Minimum-safe-FPR search result.
    MinSafeFpr(MsfSearch),
    /// Zhuyi trace analysis result.
    Analysis(AnalysisOutcome),
}

/// One finished job: the job echoed back plus its outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job that ran.
    pub job: SweepJob,
    /// What it produced.
    pub outcome: JobOutcome,
}

/// Nearest-rank percentile of `values` (`0 < p <= 100`); `None` for an
/// empty slice. Not an interpolating percentile: always returns an
/// observed value.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(p > 0.0 && p <= 100.0, "percentile out of range: {p}");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN percentile input"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Per-scenario aggregation across every seed/rate/predictor variant that
/// scenario ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSummary {
    /// The scenario's name (Table-1 name for catalog scenarios, the
    /// declared name for registry-defined ones).
    pub name: String,
    /// Jobs that ran for it.
    pub jobs: usize,
    /// Probe/analyze runs that collided.
    pub collisions: usize,
    /// Median minimum-safe rate across seeds (MSF jobs only).
    pub msf_p50: Option<f64>,
    /// 90th-percentile minimum-safe rate across seeds.
    pub msf_p90: Option<f64>,
    /// Worst (largest) minimum-safe rate across seeds.
    pub msf_max: Option<f64>,
    /// MSF jobs whose instance still collided at the grid's largest rate
    /// (their rate is unknown above the grid; they enter the percentile
    /// columns as infinity and the JSON export as `null`).
    pub msf_above_grid: usize,
    /// Median peak Zhuyi estimate across analyze jobs.
    pub est_p50: Option<f64>,
    /// Worst peak Zhuyi estimate across analyze jobs.
    pub est_max: Option<f64>,
}

/// Merged, id-ordered results of one fleet sweep.
#[derive(Debug, Clone, Default)]
pub struct ResultStore {
    results: Vec<JobResult>,
}

impl ResultStore {
    /// Builds a store from finished jobs (re-sorted by id defensively).
    pub fn new(mut results: Vec<JobResult>) -> Self {
        results.sort_by_key(|r| r.job.id);
        Self { results }
    }

    /// The results, ascending by [`JobId`].
    pub fn results(&self) -> &[JobResult] {
        &self.results
    }

    /// Number of finished jobs.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Looks a result up by id.
    pub fn get(&self, id: JobId) -> Option<&JobResult> {
        self.results
            .binary_search_by_key(&id, |r| r.job.id)
            .ok()
            .map(|i| &self.results[i])
    }

    /// One row per job, in id order — the sweep's full ledger.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new([
            "job",
            "scenario",
            "seed",
            "kind",
            "rates",
            "predictor",
            "collided",
            "collision_time_s",
            "collision_actor",
            "min_clearance_m",
            "duration_s",
            "msf",
            "sims_run",
            "grid_size",
            "max_camera_fpr",
            "steps",
        ]);
        for result in &self.results {
            let job = &result.job;
            let mut row = vec![
                job.id.0.to_string(),
                job.spec.scenario.name().to_string(),
                job.spec.seed.to_string(),
                job.spec.kind.name().to_string(),
            ];
            let dash = || "-".to_string();
            match &job.spec.kind {
                JobKind::Probe { plan, .. } => row.extend([plan.to_string(), dash()]),
                JobKind::MinSafeFpr { .. } => row.extend([dash(), dash()]),
                JobKind::Analyze {
                    plan, predictor, ..
                } => row.extend([plan.to_string(), predictor.to_string()]),
            }
            match &result.outcome {
                JobOutcome::Probe(p) => row.extend([
                    p.collided.to_string(),
                    p.collision_time
                        .map_or_else(dash, |t| format!("{:.3}", t.value())),
                    p.collision_actor.map_or_else(dash, |a| a.0.to_string()),
                    p.min_clearance
                        .map_or_else(dash, |c| format!("{:.3}", c.value())),
                    format!("{:.2}", p.duration.value()),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                ]),
                JobOutcome::MinSafeFpr(m) => row.extend([
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    m.label(),
                    m.sims_run.to_string(),
                    m.grid_size.to_string(),
                    dash(),
                    dash(),
                ]),
                JobOutcome::Analysis(a) => row.extend([
                    a.collided.to_string(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    a.max_camera_fpr.map_or_else(dash, |f| format!("{f:.2}")),
                    a.steps.to_string(),
                ]),
            }
            table.row(row);
        }
        table
    }

    /// The full ledger as CSV (header first), via [`Table::to_csv`].
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// Per-scenario summaries, in the sweep's scenario order.
    pub fn summaries(&self) -> Vec<ScenarioSummary> {
        let mut order: Vec<&str> = Vec::new();
        for result in &self.results {
            let name = result.job.spec.scenario.name();
            if !order.contains(&name) {
                order.push(name);
            }
        }
        order
            .into_iter()
            .map(|name| {
                let of_scenario: Vec<&JobResult> = self
                    .results
                    .iter()
                    .filter(|r| r.job.spec.scenario.name() == name)
                    .collect();
                let msf: Vec<f64> = of_scenario
                    .iter()
                    .filter_map(|r| match &r.outcome {
                        JobOutcome::MinSafeFpr(m) => Some(m.numeric()),
                        _ => None,
                    })
                    .collect();
                let est: Vec<f64> = of_scenario
                    .iter()
                    .filter_map(|r| match &r.outcome {
                        JobOutcome::Analysis(a) => a.max_camera_fpr,
                        _ => None,
                    })
                    .collect();
                let collisions = of_scenario
                    .iter()
                    .filter(|r| match &r.outcome {
                        JobOutcome::Probe(p) => p.collided,
                        JobOutcome::Analysis(a) => a.collided,
                        JobOutcome::MinSafeFpr(_) => false,
                    })
                    .count();
                let msf_above_grid = msf.iter().filter(|v| v.is_infinite()).count();
                ScenarioSummary {
                    name: name.to_string(),
                    jobs: of_scenario.len(),
                    collisions,
                    msf_p50: percentile(&msf, 50.0),
                    msf_p90: percentile(&msf, 90.0),
                    msf_max: percentile(&msf, 100.0),
                    msf_above_grid,
                    est_p50: percentile(&est, 50.0),
                    est_max: percentile(&est, 100.0),
                }
            })
            .collect()
    }

    /// The summaries as an aligned table.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new([
            "scenario",
            "jobs",
            "collisions",
            "msf_p50",
            "msf_p90",
            "msf_max",
            "est_p50",
            "est_max",
        ]);
        let fmt = |v: Option<f64>| match v {
            None => "-".to_string(),
            Some(x) if x.is_infinite() => ">max".to_string(),
            Some(x) => format!("{x:.1}"),
        };
        for s in self.summaries() {
            table.row([
                s.name.clone(),
                s.jobs.to_string(),
                s.collisions.to_string(),
                fmt(s.msf_p50),
                fmt(s.msf_p90),
                fmt(s.msf_max),
                fmt(s.est_p50),
                fmt(s.est_max),
            ]);
        }
        table
    }

    /// The whole sweep as a JSON document (jobs ledger + summaries).
    ///
    /// Hand-rolled writer: the workspace's serde is a hermetic no-op shim,
    /// and the document is flat enough that a real serializer buys
    /// nothing. Field order is fixed, so output is byte-deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.results.len() * 160 + 256);
        out.push_str("{\n  \"jobs\": [");
        for (i, result) in self.results.iter().enumerate() {
            let job = &result.job;
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"id\": {}, \"scenario\": {}, \"seed\": {}, \"kind\": {}",
                job.id.0,
                json_str(job.spec.scenario.name()),
                job.spec.seed,
                json_str(job.spec.kind.name()),
            );
            match &job.spec.kind {
                JobKind::Probe { plan, .. } => {
                    let _ = write!(out, ", \"rates\": {}", json_str(&plan.to_string()));
                }
                JobKind::MinSafeFpr { candidates } => {
                    let cells: Vec<String> = candidates.iter().map(|c| c.to_string()).collect();
                    let _ = write!(out, ", \"candidates\": [{}]", cells.join(", "));
                }
                JobKind::Analyze {
                    plan, predictor, ..
                } => {
                    let _ = write!(
                        out,
                        ", \"rates\": {}, \"predictor\": {}",
                        json_str(&plan.to_string()),
                        json_str(predictor.name()),
                    );
                }
            }
            match &result.outcome {
                JobOutcome::Probe(p) => {
                    let _ = write!(
                        out,
                        ", \"collided\": {}, \"collision_time_s\": {}, \"collision_actor\": {}, \"min_clearance_m\": {}, \"duration_s\": {}",
                        p.collided,
                        json_opt_num(p.collision_time.map(|t| t.value())),
                        p.collision_actor
                            .map_or_else(|| "null".to_string(), |a| a.0.to_string()),
                        json_opt_num(p.min_clearance.map(|c| c.value())),
                        json_opt_num(Some(p.duration.value())),
                    );
                }
                JobOutcome::MinSafeFpr(m) => {
                    let _ = write!(
                        out,
                        ", \"msf\": {}, \"sims_run\": {}, \"grid_size\": {}",
                        json_str(&m.label()),
                        m.sims_run,
                        m.grid_size,
                    );
                }
                JobOutcome::Analysis(a) => {
                    let _ = write!(
                        out,
                        ", \"collided\": {}, \"max_camera_fpr\": {}, \"steps\": {}, \"constraint_evaluations\": {}",
                        a.collided,
                        json_opt_num(a.max_camera_fpr),
                        a.steps,
                        a.constraint_evaluations,
                    );
                }
            }
            out.push('}');
        }
        out.push_str("\n  ],\n  \"summaries\": [");
        for (i, s) in self.summaries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"scenario\": {}, \"jobs\": {}, \"collisions\": {}, \"msf_p50\": {}, \"msf_p90\": {}, \"msf_max\": {}, \"msf_above_grid\": {}, \"est_p50\": {}, \"est_max\": {}}}",
                json_str(&s.name),
                s.jobs,
                s.collisions,
                json_opt_num(s.msf_p50),
                json_opt_num(s.msf_p90),
                json_opt_num(s.msf_max),
                s.msf_above_grid,
                json_opt_num(s.est_p50),
                json_opt_num(s.est_max),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Kept probe traces as `(file_name, csv)` pairs, in id order, named
    /// `trace_<job>_<scenario-slug>_seed<k>.csv`.
    pub fn kept_traces(&self) -> Vec<(String, &str)> {
        self.results
            .iter()
            .filter_map(|r| match &r.outcome {
                JobOutcome::Probe(p) => p.trace_csv.as_deref().map(|csv| {
                    (
                        format!(
                            "trace_{}_{}_seed{}.csv",
                            r.job.id.0,
                            r.job.spec.scenario.slug(),
                            r.job.spec.seed
                        ),
                        csv,
                    )
                }),
                _ => None,
            })
            .collect()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A number-or-null JSON value. Non-finite values map to `null` so every
/// numeric field stays monotyped for schema-driven consumers; summaries
/// carry the above-grid information separately in `msf_above_grid`.
fn json_opt_num(v: Option<f64>) -> String {
    match v {
        None => "null".to_string(),
        Some(x) if !x.is_finite() => "null".to_string(),
        Some(x) => format!("{x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_scenarios::catalog::Mrf;

    #[test]
    fn percentile_nearest_rank() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&v, 75.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 1.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.5], 99.0), Some(7.5));
    }

    #[test]
    fn msf_label_and_numeric_follow_the_grid() {
        let search = |mrf| MsfSearch {
            mrf,
            sims_run: 3,
            grid_size: 4,
            grid_min: 2,
            grid_max: 6,
        };
        assert_eq!(search(Mrf::BelowMinimumTested).label(), "<2");
        assert_eq!(search(Mrf::Fpr(4)).label(), "4");
        assert_eq!(search(Mrf::AboveMaximumTested).label(), ">6");
        assert_eq!(search(Mrf::BelowMinimumTested).numeric(), 1.0);
        assert_eq!(search(Mrf::Fpr(6)).numeric(), 6.0);
        assert!(search(Mrf::AboveMaximumTested).numeric().is_infinite());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_opt_num(None), "null");
        assert_eq!(json_opt_num(Some(2.5)), "2.5");
        assert_eq!(json_opt_num(Some(f64::INFINITY)), "null");
        assert_eq!(json_opt_num(Some(f64::NAN)), "null");
    }
}
