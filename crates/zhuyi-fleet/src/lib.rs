//! **zhuyi-fleet** — parallel fleet-scale scenario sweeps for the Zhuyi
//! (DAC 2022) reproduction.
//!
//! Zhuyi's pre-deployment use case (§3.1) answers a per-instant question —
//! the minimum per-camera frame processing rate that keeps the ego
//! collision-free — but it pays off only when that question is asked
//! across an entire scenario corpus: every Table-1 scenario, times
//! hundreds of jittered variants, times candidate rate plans and predictor
//! choices. This crate turns the repo's one-scenario-at-a-time machinery
//! into that batch engine:
//!
//! - [`job`] — the [`job::SweepJob`] unit of work: *scenario × jitter
//!   seed × rate plan × predictor choice*, plus the question asked
//!   (collision probe, minimum-safe-FPR search, Zhuyi trace analysis);
//! - [`plan`] — [`plan::SweepPlan`] expansion of the corpus cross product
//!   into a dense, id-ordered job list;
//! - [`pool`] — a sharded `std::thread` worker pool whose result merge is
//!   byte-deterministic regardless of worker count;
//! - [`search`] — the per-instance minimum-safe-FPR driver: binary
//!   localization of the safety boundary plus a memoized verification of
//!   every higher rate, answering exactly like the old brute-force scans
//!   while skipping the candidates below the boundary;
//! - [`exec`] — pure job execution (the function the pool parallelizes),
//!   metrics-only by default: probes and MSF searches stream through
//!   `av-sim`'s `MetricsObserver` and never store a scene, recording full
//!   traces only for jobs that export or analyze them;
//! - [`store`] — the merged [`store::ResultStore`]: percentile
//!   aggregation per scenario, aligned tables and CSV via
//!   [`zhuyi_bench::Table`], JSON, and full-trace export via
//!   [`av_sim::io`].
//!
//! The `fleet_sweep` binary wraps all of this in a CLI; the
//! `scenario_sweep` and `mrf_probe` examples are ports of the repo's
//! original hand-rolled loops onto this API.
//!
//! # Quickstart
//!
//! ```no_run
//! use zhuyi_fleet::{run_sweep, SweepPlan};
//!
//! // Table 1, fleet-style: all nine scenarios x 10 jittered variants,
//! // each binary-searching its minimum safe rate.
//! let plan = SweepPlan::builder()
//!     .jittered_variants(10)
//!     .min_safe_fpr(vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 30])
//!     .build();
//! let store = run_sweep(&plan, 8);
//! println!("{}", store.summary_table().render());
//! std::fs::write("results/fleet.json", store.to_json()).unwrap();
//! ```
//!
//! # Determinism
//!
//! A sweep is a pure function of its plan: scenarios rebuild from
//! (id, seed), the simulator and estimator are deterministic, results
//! merge in job-id order, and no wall-clock data enters any export. The
//! `tests/fleet_determinism.rs` suite pins the resulting guarantee —
//! multi-threaded sweeps are byte-identical to single-threaded ones.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod exec;
pub mod job;
pub mod plan;
pub mod pool;
pub mod search;
pub mod store;

pub use exec::ExecOptions;
pub use job::{JobId, JobKind, JobSpec, PredictorChoice, RateSpec, SweepJob};
pub use plan::{SweepPlan, SweepPlanBuilder};
pub use search::{
    min_safe_fpr, min_safe_fpr_batched, min_safe_fpr_seed_batched, min_safe_fpr_with, MsfSearch,
};
pub use store::{JobOutcome, JobResult, ResultStore, ScenarioSummary};

/// Runs every job of `plan` on `workers` threads and merges the results
/// into an id-ordered [`ResultStore`]. Execution is metrics-only wherever
/// the outcome allows it (see [`exec`]).
///
/// The output is identical for any `workers >= 1`; see the crate docs'
/// determinism section.
pub fn run_sweep(plan: &SweepPlan, workers: usize) -> ResultStore {
    run_sweep_with(plan, workers, ExecOptions::default())
}

/// [`run_sweep`] under explicit [`ExecOptions`] — e.g. `record_traces` to
/// force the classic full-trace path for every job (identical results,
/// higher cost; the baseline the `perf_baseline` benchmark measures
/// against), or `seed_blocks` to coarsen the work-item granularity from
/// one job to one **seed block**: up to `seed_blocks` consecutive
/// minimum-safe-FPR jobs advanced through a single seed-batched lockstep
/// loop (`exec::execute_seed_block`). Blocks preserve plan order, the
/// pool merge preserves block order, and every outcome is byte-identical
/// to its per-job execution — so exports do not change, only wall-clock
/// and scheduling granularity do.
pub fn run_sweep_with(plan: &SweepPlan, workers: usize, options: ExecOptions) -> ResultStore {
    let jobs = plan.jobs().to_vec();
    let blockable = options.seed_blocks > 1 && !options.record_traces && options.batch_lanes != 1;
    if !blockable {
        let results = pool::run_indexed(jobs, workers, move |job| {
            let timer = zhuyi_telemetry::JobTimer::start();
            let outcome = exec::execute_with(&job.spec, options);
            timer.finish(job.id.0);
            JobResult {
                job: job.clone(),
                outcome,
            }
        });
        return ResultStore::new(results);
    }
    let blocks = seed_blocks(jobs, options.seed_blocks);
    let results: Vec<JobResult> =
        pool::run_indexed(blocks, workers, move |block| execute_block(block, options))
            .into_iter()
            .flatten()
            .collect();
    ResultStore::new(results)
}

/// Groups consecutive minimum-safe-FPR jobs that share a candidate grid
/// into blocks of at most `limit`; every other job rides alone. Plan
/// order is preserved both across and within blocks, which is what keeps
/// the flattened result list id-ordered.
fn seed_blocks(jobs: Vec<SweepJob>, limit: usize) -> Vec<Vec<SweepJob>> {
    let mut blocks: Vec<Vec<SweepJob>> = Vec::new();
    for job in jobs {
        let extends = match (&job.spec.kind, blocks.last()) {
            (JobKind::MinSafeFpr { candidates }, Some(block)) if block.len() < limit => {
                matches!(&block[0].spec.kind,
                    JobKind::MinSafeFpr { candidates: prev } if prev == candidates)
            }
            _ => false,
        };
        if extends {
            blocks.last_mut().expect("nonempty by match").push(job);
        } else {
            blocks.push(vec![job]);
        }
    }
    blocks
}

fn execute_block(block: &[SweepJob], options: ExecOptions) -> Vec<JobResult> {
    let batchable = block.len() > 1
        && block
            .iter()
            .all(|job| matches!(job.spec.kind, JobKind::MinSafeFpr { .. }));
    if !batchable {
        return block
            .iter()
            .map(|job| {
                let timer = zhuyi_telemetry::JobTimer::start();
                let outcome = exec::execute_with(&job.spec, options);
                timer.finish(job.id.0);
                JobResult {
                    job: job.clone(),
                    outcome,
                }
            })
            .collect();
    }
    let specs: Vec<JobSpec> = block.iter().map(|job| job.spec.clone()).collect();
    let timer = zhuyi_telemetry::JobTimer::start();
    let outcomes = exec::execute_seed_block(&specs, options);
    // Block execution interleaves its jobs through one lockstep loop, so
    // each job's recorded wall time is the amortized even share.
    timer.finish_block(block.iter().map(|job| job.id.0));
    outcomes
        .into_iter()
        .zip(block)
        .map(|(outcome, job)| JobResult {
            job: job.clone(),
            outcome,
        })
        .collect()
}
