//! Per-instance minimum-safe-FPR search: binary localization plus an
//! exhaustive upper verification.
//!
//! The repo's original probes ([`av_scenarios::catalog::minimum_required_fpr`],
//! the `mrf_probe` example, the Table-1 binary) evaluate *every* candidate
//! rate — O(grid) closed-loop simulations per scenario instance.
//! [`min_safe_fpr`] first localizes the safety boundary with a first-safe
//! binary search, then **verifies every candidate above it** before
//! answering.
//!
//! The verification phase is not optional. Safety is *mostly* monotone in
//! the processing rate (faster processing shortens perception latency),
//! but the closed loop discretizes frame times against maneuver triggers,
//! and that sampling interaction produces real non-monotone blips — e.g.
//! the curved challenging cut-in at some jitter seeds survives 2 FPR yet
//! collides at 3 FPR. A bare binary search would report "2 is safe" for
//! such an instance; for a safety tool that is the one unacceptable
//! answer. With verification, the result is always identical to the
//! exhaustive scan's (pinned by this module's tests and
//! `tests/fleet_determinism.rs`), every candidate is memoized so no
//! simulation runs twice, and the saving over the scan is the candidates
//! below the boundary that were never simulated. The cost profile is
//! therefore boundary-position-dependent: `sims_run` ranges from ~log(grid)
//! savings for hard scenarios down to scan parity for benign ones.

use av_core::units::Fpr;
use av_scenarios::catalog::{Mrf, Scenario};
use av_scenarios::sweep::SweepContext;
use serde::{Deserialize, Serialize};

/// Outcome of one minimum-safe-FPR search, with its cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsfSearch {
    /// The minimum safe rate, in the same encoding as Table 1's MRF
    /// column (`<grid_min` / exact / `>grid_max`).
    pub mrf: Mrf,
    /// The candidate evaluations the per-rate search algorithm charges
    /// for this answer (every candidate at most once; at most
    /// `grid_size`). Both backends report the same number — the batched
    /// backend replays the per-rate binary-plus-verification accounting
    /// over its verdict table — so exports are byte-identical whichever
    /// backend produced them. What differs is wall-clock: the batched
    /// backend runs the whole grid as lockstep lanes with early lane
    /// retirement (see [`min_safe_fpr_batched`]).
    pub sims_run: u32,
    /// Simulations the brute-force grid scan always runs.
    pub grid_size: u32,
    /// Smallest candidate rate in the searched grid.
    pub grid_min: u32,
    /// Largest candidate rate in the searched grid.
    pub grid_max: u32,
}

impl MsfSearch {
    /// Grid-aware label for exports: `<grid_min`, the exact rate, or
    /// `>grid_max`. Unlike [`Mrf`]'s `Display` (which hard-codes Table 1's
    /// `<1`/`>30` bounds), this stays honest for custom `--rates` grids.
    pub fn label(&self) -> String {
        match self.mrf {
            Mrf::BelowMinimumTested => format!("<{}", self.grid_min),
            Mrf::Fpr(rate) => rate.to_string(),
            Mrf::AboveMaximumTested => format!(">{}", self.grid_max),
        }
    }

    /// Numeric encoding for percentile math: a below-grid result counts
    /// as half the grid floor, an exact rate as itself, and an above-grid
    /// result as infinity (propagating honestly into max columns).
    pub fn numeric(&self) -> f64 {
        match self.mrf {
            Mrf::BelowMinimumTested => f64::from(self.grid_min) / 2.0,
            Mrf::Fpr(rate) => f64::from(rate),
            Mrf::AboveMaximumTested => f64::INFINITY,
        }
    }
}

/// Memoizing safety oracle over one scenario instance's candidate grid.
struct Probe<'a> {
    scenario: &'a Scenario,
    /// Shared simulation for the streaming probes: the scenario is built
    /// once and reset per candidate (sweep-level scene sharing). Lazily
    /// created so the trace-recording baseline never pays for it.
    context: Option<SweepContext<'a>>,
    candidates: &'a [u32],
    evals: Vec<Option<bool>>,
    sims_run: u32,
    record_traces: bool,
}

impl Probe<'_> {
    fn safe_at(&mut self, index: usize) -> bool {
        if let Some(known) = self.evals[index] {
            return known;
        }
        self.sims_run += 1;
        let fpr = Fpr(f64::from(self.candidates[index]));
        // Only the collision bit is consulted, so the default probe runs
        // streaming under a NullObserver (nothing recorded, nothing
        // folded) on the shared reset-per-candidate simulation;
        // `record_traces` forces the classic full-trace build-per-run
        // path (the equivalence baseline, and what `--record-traces`
        // sweeps use).
        let safe = if self.record_traces {
            !self.scenario.run_at(fpr).collided()
        } else {
            let scenario = self.scenario;
            !self
                .context
                .get_or_insert_with(|| SweepContext::new(scenario))
                .collides_at(fpr)
        };
        self.evals[index] = Some(safe);
        safe
    }
}

/// Finds the smallest rate in `candidates` (ascending) at which
/// `scenario` completes collision-free **and every higher candidate is
/// also collision-free** — the same answer as running the whole grid
/// through [`av_scenarios::catalog::minimum_required_fpr`], usually in
/// fewer simulations (see the module docs for why the upper candidates
/// must all be checked). Probes are metrics-only (streaming, zero stored
/// scenes); see [`min_safe_fpr_with`] to force trace-recording probes.
///
/// Returns [`Mrf::BelowMinimumTested`] when every candidate is safe (the
/// probe cannot distinguish rates below the grid floor), and
/// [`Mrf::AboveMaximumTested`] when the largest candidate still collides.
///
/// Each probe runs on a shared [`SweepContext`]: the scenario instance
/// is built once and the simulation reset — never rebuilt — between
/// candidate rates.
///
/// ```no_run
/// use av_scenarios::catalog::{Mrf, Scenario, ScenarioId};
/// use zhuyi_fleet::min_safe_fpr;
///
/// // Cut-out, nominal geometry: unsafe at 1 FPR, safe from 2 up —
/// // Table 1's MRF 2 — at the cost of at most one sim per candidate.
/// let scenario = Scenario::build(ScenarioId::CutOut, 0);
/// let result = min_safe_fpr(&scenario, &[1, 2, 4, 30]);
/// assert_eq!(result.mrf, Mrf::Fpr(2));
/// assert!(result.sims_run <= result.grid_size);
/// println!("{} in {} sims", result.label(), result.sims_run);
/// ```
///
/// # Panics
///
/// Panics if `candidates` is empty or not strictly ascending.
pub fn min_safe_fpr(scenario: &Scenario, candidates: &[u32]) -> MsfSearch {
    min_safe_fpr_with(scenario, candidates, false)
}

/// [`min_safe_fpr`] with an explicit probe backend: `record_traces =
/// false` streams metrics only (the default fast path), `true` records a
/// full trace per probe (the classic path). Both backends simulate the
/// identical closed loop and return identical answers.
///
/// # Panics
///
/// Panics if `candidates` is empty or not strictly ascending.
pub fn min_safe_fpr_with(
    scenario: &Scenario,
    candidates: &[u32],
    record_traces: bool,
) -> MsfSearch {
    assert!(!candidates.is_empty(), "empty candidate grid");
    assert!(
        candidates.windows(2).all(|w| w[0] < w[1]),
        "candidate grid must be strictly ascending"
    );

    let n = candidates.len();
    let mut probe = Probe {
        scenario,
        context: None,
        candidates,
        evals: vec![None; n],
        sims_run: 0,
        record_traces,
    };

    // Phase 1 — binary localization: the first-safe index under a
    // monotonicity reading. Invariant: when `lo > 0`, index `lo - 1` was
    // evaluated unsafe.
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe.safe_at(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }

    // Phase 2 — verification: evaluate every candidate from `lo` up
    // (memoized). The answer is the candidate above the *highest* unsafe
    // index, exactly like the exhaustive scan; any unevaluated candidate
    // sits below `lo - 1` and therefore cannot raise it.
    let mut highest_unsafe = lo.checked_sub(1);
    for index in lo..n {
        if !probe.safe_at(index) {
            highest_unsafe = Some(index);
        }
    }

    let mrf = match highest_unsafe {
        None => Mrf::BelowMinimumTested,
        Some(h) if h + 1 < n => Mrf::Fpr(candidates[h + 1]),
        Some(_) => Mrf::AboveMaximumTested,
    };
    MsfSearch {
        mrf,
        sims_run: probe.sims_run,
        grid_size: n as u32,
        grid_min: candidates[0],
        grid_max: candidates[n - 1],
    }
}

/// [`min_safe_fpr`] through the lane-batched backend: the whole candidate
/// grid runs as lockstep lanes of one shared simulation
/// ([`SweepContext::collides_batched`]), `batch_lanes` per pass (`0` =
/// the full grid in one pass). Collided lanes retire where their
/// standalone runs would stop, and conservative certificates retire
/// provably-safe suffixes early (`av_sim::batch::cert`), which is where
/// the wall-clock win over the per-rate search comes from.
///
/// The answer — and the exported accounting — is **identical** to
/// [`min_safe_fpr`]: the MRF falls out of the same
/// highest-unsafe-candidate rule, and `sims_run` replays the per-rate
/// binary-localization-plus-verification schedule over the batched
/// verdict table, charging exactly the candidates that search would have
/// simulated. Pinned by this module's tests and the fleet batched
/// equivalence suite.
///
/// # Panics
///
/// Panics if `candidates` is empty or not strictly ascending.
pub fn min_safe_fpr_batched(
    scenario: &Scenario,
    candidates: &[u32],
    batch_lanes: usize,
) -> MsfSearch {
    assert!(!candidates.is_empty(), "empty candidate grid");
    assert!(
        candidates.windows(2).all(|w| w[0] < w[1]),
        "candidate grid must be strictly ascending"
    );
    let n = candidates.len();
    let chunk = if batch_lanes == 0 { n } else { batch_lanes };
    let mut context = SweepContext::new(scenario);
    let mut safe = Vec::with_capacity(n);
    for block in candidates.chunks(chunk) {
        let rates: Vec<Fpr> = block.iter().map(|&c| Fpr(f64::from(c))).collect();
        safe.extend(
            context
                .collides_batched(&rates)
                .into_iter()
                .map(|collided| !collided),
        );
    }
    let highest_unsafe = safe.iter().rposition(|&s| !s);
    let mrf = match highest_unsafe {
        None => Mrf::BelowMinimumTested,
        Some(h) if h + 1 < n => Mrf::Fpr(candidates[h + 1]),
        Some(_) => Mrf::AboveMaximumTested,
    };
    MsfSearch {
        mrf,
        sims_run: replayed_sims_run(&safe),
        grid_size: n as u32,
        grid_min: candidates[0],
        grid_max: candidates[n - 1],
    }
}

/// [`min_safe_fpr_batched`] across **several scenario instances at
/// once** — the seed axis batched on top of the rate axis. Every
/// instance (typically: one jitter seed of one scenario family)
/// becomes a lane *group* of one lockstep loop
/// ([`av_scenarios::sweep::collides_seed_batched_with_stats`]); groups
/// own their own jittered geometry and retire lane by lane, so a
/// certificate on one seed's 30-FPR lane never waits on another seed's
/// straggler.
///
/// `results[g]` is **identical** — answer and accounting — to
/// `min_safe_fpr(&scenarios[g], candidates)`: the MRF falls out of the
/// same highest-unsafe-candidate rule over the group's verdict row, and
/// `sims_run` replays the per-rate binary-plus-verification schedule.
/// Pinned by this module's tests and the cross-path equivalence harness
/// (`tests/path_equivalence.rs`).
///
/// # Panics
///
/// Panics if `candidates` is empty or not strictly ascending.
pub fn min_safe_fpr_seed_batched(scenarios: &[Scenario], candidates: &[u32]) -> Vec<MsfSearch> {
    assert!(!candidates.is_empty(), "empty candidate grid");
    assert!(
        candidates.windows(2).all(|w| w[0] < w[1]),
        "candidate grid must be strictly ascending"
    );
    let n = candidates.len();
    let rates: Vec<Fpr> = candidates.iter().map(|&c| Fpr(f64::from(c))).collect();
    let mut contexts: Vec<SweepContext> = scenarios.iter().map(SweepContext::new).collect();
    let (verdicts, _) =
        av_scenarios::sweep::collides_seed_batched_with_stats(&mut contexts, &rates);
    verdicts
        .into_iter()
        .map(|row| {
            let safe: Vec<bool> = row.into_iter().map(|collided| !collided).collect();
            let highest_unsafe = safe.iter().rposition(|&s| !s);
            let mrf = match highest_unsafe {
                None => Mrf::BelowMinimumTested,
                Some(h) if h + 1 < n => Mrf::Fpr(candidates[h + 1]),
                Some(_) => Mrf::AboveMaximumTested,
            };
            MsfSearch {
                mrf,
                sims_run: replayed_sims_run(&safe),
                grid_size: n as u32,
                grid_min: candidates[0],
                grid_max: candidates[n - 1],
            }
        })
        .collect()
}

/// The number of candidates the per-rate search would have simulated for
/// this verdict table: the binary-localization probes plus the full
/// verification sweep from the first-safe index up, memoized exactly as
/// [`min_safe_fpr_with`] memoizes its probes.
fn replayed_sims_run(safe: &[bool]) -> u32 {
    let n = safe.len();
    let mut evaluated = vec![false; n];
    let mut count = 0u32;
    let eval = |i: usize, evaluated: &mut [bool], count: &mut u32| {
        if !evaluated[i] {
            evaluated[i] = true;
            *count += 1;
        }
        safe[i]
    };
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if eval(mid, &mut evaluated, &mut count) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    for index in lo..n {
        eval(index, &mut evaluated, &mut count);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_scenarios::catalog::{minimum_required_fpr, ScenarioId, PAPER_RATE_GRID};

    #[test]
    fn batched_search_is_byte_equivalent_to_per_rate_search() {
        // Whole MsfSearch records — answer AND accounting — must match,
        // including the non-monotone instance that forces verification
        // and a mid-grid boundary, for every batching granularity.
        for (id, seed) in [
            (ScenarioId::CutOut, 0u64),
            (ScenarioId::CutOutFast, 0),
            (ScenarioId::ChallengingCutInCurved, 6),
            (ScenarioId::VehicleFollowing, 2),
        ] {
            let scenario = Scenario::build(id, seed);
            let per_rate = min_safe_fpr(&scenario, &PAPER_RATE_GRID);
            for lanes in [0usize, 1, 3, 5, 12] {
                let batched = min_safe_fpr_batched(&scenario, &PAPER_RATE_GRID, lanes);
                assert_eq!(
                    batched, per_rate,
                    "{id} seed {seed}: batched({lanes}) diverged"
                );
            }
        }
    }

    #[test]
    fn seed_batched_search_is_byte_equivalent_to_per_rate_search() {
        // One mixed-geometry batch — straight and curved families,
        // several seeds each, including the non-monotone curved seed 6 —
        // must reproduce every per-instance MsfSearch record exactly.
        let scenarios: Vec<Scenario> = [
            (ScenarioId::CutOut, 0u64),
            (ScenarioId::CutOut, 4),
            (ScenarioId::CutOutFast, 0),
            (ScenarioId::ChallengingCutInCurved, 6),
            (ScenarioId::VehicleFollowing, 2),
        ]
        .into_iter()
        .map(|(id, seed)| Scenario::build(id, seed))
        .collect();
        let batched = min_safe_fpr_seed_batched(&scenarios, &PAPER_RATE_GRID);
        assert_eq!(batched.len(), scenarios.len());
        for (scenario, got) in scenarios.iter().zip(&batched) {
            let want = min_safe_fpr(scenario, &PAPER_RATE_GRID);
            assert_eq!(
                *got, want,
                "{} seed {}: seed-batched search diverged",
                scenario.name, scenario.seed
            );
        }
    }

    #[test]
    fn search_matches_exhaustive_probe() {
        // A compact grid keeps this affordable in debug builds; the full
        // Table-1 grid is exercised by the fleet integration tests.
        let grid = [1u32, 2, 4, 6, 30];
        for id in [
            ScenarioId::CutOut,
            ScenarioId::CutIn,
            ScenarioId::VehicleFollowing,
        ] {
            let scenario = Scenario::build(id, 0);
            let fast = min_safe_fpr(&scenario, &grid);
            let slow = minimum_required_fpr(id, &grid, &[0]);
            assert_eq!(fast.mrf, slow, "{id}: search disagrees with scan");
            assert!(
                fast.sims_run <= fast.grid_size,
                "{id}: search ran more sims than the grid"
            );
        }
    }

    #[test]
    fn non_monotone_instances_are_not_misreported() {
        // The curved challenging cut-in at seed 6 is unsafe at 1, safe at
        // 2, unsafe again at 3, and safe from 4 up — the boundary blip
        // that makes the verification phase mandatory. A bare binary
        // search answers 2 here; the verified search must answer 4, like
        // the exhaustive scan.
        let scenario = Scenario::build(ScenarioId::ChallengingCutInCurved, 6);
        let result = min_safe_fpr(&scenario, &PAPER_RATE_GRID);
        assert_eq!(result.mrf, Mrf::Fpr(4), "must not report the unsafe 2");
        let scan = minimum_required_fpr(ScenarioId::ChallengingCutInCurved, &PAPER_RATE_GRID, &[6]);
        assert_eq!(result.mrf, scan);
    }

    #[test]
    fn search_saves_simulations_on_hard_scenarios() {
        // Cut-out fast (MRF 6): the boundary sits mid-grid, so the
        // binary phase skips several low candidates the scan would run.
        let scenario = Scenario::build(ScenarioId::CutOutFast, 0);
        let result = min_safe_fpr(&scenario, &PAPER_RATE_GRID);
        assert_eq!(result.mrf, Mrf::Fpr(6), "Table 1: Cut-out fast MRF is 6");
        assert!(
            result.sims_run < result.grid_size,
            "expected savings over the {} scan, ran {}",
            result.grid_size,
            result.sims_run
        );
        // And never more than the scan, anywhere.
        assert!(result.sims_run <= result.grid_size);
    }

    #[test]
    fn streaming_and_recorded_probes_agree() {
        let grid = [1u32, 4, 30];
        for (id, seed) in [
            (ScenarioId::CutOut, 0u64),
            (ScenarioId::ChallengingCutInCurved, 6),
        ] {
            let scenario = Scenario::build(id, seed);
            let streaming = min_safe_fpr_with(&scenario, &grid, false);
            let recorded = min_safe_fpr_with(&scenario, &grid, true);
            assert_eq!(streaming, recorded, "{id} seed {seed}: backends diverged");
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_grids() {
        let scenario = Scenario::build(ScenarioId::CutOut, 0);
        min_safe_fpr(&scenario, &[4, 1]);
    }
}
